// Direction-aware BFS over the (min, Select2nd) semiring, checked against
// the serial queue oracle across rank counts and graph regimes, plus the
// structural contract of the min-parent tree.
#include "kernel/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "kernel/reference.hpp"
#include "kernel/view.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace lacc::kernel {
namespace {

const sim::MachineModel& machine() {
  static const sim::MachineModel m = sim::MachineModel::edison();
  return m;
}

void expect_matches_reference(const graph::EdgeList& el, VertexId source) {
  const auto truth = reference_bfs_distances(el, source);
  for (const int nranks : {1, 4, 9}) {
    const auto view = GraphView::from_edges(el, nranks, machine());
    const auto result = bfs(view, source);
    EXPECT_EQ(result.dist, truth) << "nranks=" << nranks;
    const auto reached = static_cast<std::uint64_t>(
        std::count_if(truth.begin(), truth.end(),
                      [](VertexId d) { return d != kNoVertex; }));
    EXPECT_EQ(result.reached, reached) << "nranks=" << nranks;
  }
}

TEST(Bfs, MatchesReferenceOnPath) {
  expect_matches_reference(graph::path(37), 0);
  expect_matches_reference(graph::path(37), 18);
}

TEST(Bfs, MatchesReferenceOnRmat) {
  expect_matches_reference(graph::rmat(8, 2048, /*seed=*/3), 0);
}

TEST(Bfs, MatchesReferenceOnMesh) {
  expect_matches_reference(graph::mesh3d(5, 5, 5), 62);
}

TEST(Bfs, UnreachableVerticesStayNoVertex) {
  // Two far-apart components: everything across the gap is unreachable.
  const auto el =
      graph::disjoint_union(graph::cycle(20), graph::complete(10));
  const auto view = GraphView::from_edges(el, 4, machine());
  const auto result = bfs(view, 3);
  EXPECT_EQ(result.reached, 20u);
  for (VertexId v = 20; v < 30; ++v) {
    EXPECT_EQ(result.dist[v], kNoVertex);
    EXPECT_EQ(result.parent[v], kNoVertex);
  }
}

TEST(Bfs, ParentTreeIsMinIdPreviousLevelNeighbor) {
  const auto el = graph::erdos_renyi(60, 140, /*seed=*/5);
  const auto view = GraphView::from_edges(el, 4, machine());
  const auto result = bfs(view, 0);

  // Sorted adjacency for the structural check.
  std::vector<std::vector<VertexId>> adj(el.n);
  for (const auto& e : el.edges) {
    if (e.u == e.v) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }

  EXPECT_EQ(result.parent[0], 0u);
  EXPECT_EQ(result.dist[0], 0u);
  for (VertexId v = 1; v < el.n; ++v) {
    if (result.dist[v] == kNoVertex) continue;
    const VertexId p = result.parent[v];
    ASSERT_NE(p, kNoVertex);
    // The parent is one level up and the *smallest* such neighbor — the min
    // semiring pins the tree deterministically.
    EXPECT_EQ(result.dist[p] + 1, result.dist[v]);
    VertexId min_prev = kNoVertex;
    for (const VertexId w : adj[v])
      if (result.dist[w] != kNoVertex && result.dist[w] + 1 == result.dist[v])
        min_prev = std::min(min_prev, w);
    EXPECT_EQ(p, min_prev) << "v=" << v;
  }
}

TEST(Bfs, DeterministicAcrossRankCounts) {
  const auto el = graph::rmat(8, 1500, /*seed=*/11);
  const auto base = bfs(GraphView::from_edges(el, 1, machine()), 0);
  for (const int nranks : {4, 9}) {
    const auto got = bfs(GraphView::from_edges(el, nranks, machine()), 0);
    EXPECT_EQ(got.dist, base.dist);
    EXPECT_EQ(got.parent, base.parent);
    EXPECT_EQ(got.reached, base.reached);
  }
}

TEST(Bfs, RoundsEqualEccentricityPlusOne) {
  const auto el = graph::path(17);
  const auto result = bfs(GraphView::from_edges(el, 4, machine()), 0);
  // 16 levels of frontier expansion from the end of a path, plus the final
  // round that drains the last frontier and discovers nothing.
  EXPECT_EQ(result.stats.rounds, 17u);
  EXPECT_GT(result.stats.modeled_seconds, 0.0);
}

TEST(Bfs, OutOfRangeSourceThrows) {
  const auto view = GraphView::from_edges(graph::path(8), 1, machine());
  EXPECT_THROW(bfs(view, 8), Error);
}

}  // namespace
}  // namespace lacc::kernel
