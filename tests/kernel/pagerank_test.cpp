// PageRank by (plus, times) power iteration: oracle agreement within
// tolerance, probability-mass conservation, dangling-vertex handling, the
// iteration cap, and the deterministic top-k tie-break.
#include "kernel/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "kernel/reference.hpp"
#include "kernel/view.hpp"
#include "sim/machine.hpp"

namespace lacc::kernel {
namespace {

const sim::MachineModel& machine() {
  static const sim::MachineModel m = sim::MachineModel::edison();
  return m;
}

void expect_matches_reference(const graph::EdgeList& el) {
  const KernelOptions options;
  const auto truth = reference_pagerank(el, options.damping,
                                        options.tolerance,
                                        options.max_iterations);
  for (const int nranks : {1, 4, 9}) {
    const auto view = GraphView::from_edges(el, nranks, machine());
    const auto result = pagerank(view, options);
    ASSERT_EQ(result.rank.size(), truth.size());
    for (std::size_t v = 0; v < truth.size(); ++v)
      EXPECT_NEAR(result.rank[v], truth[v], 1e-8)
          << "nranks=" << nranks << " v=" << v;
    EXPECT_TRUE(result.converged) << "nranks=" << nranks;
  }
}

TEST(PageRank, MatchesReferenceOnRmat) {
  expect_matches_reference(graph::rmat(8, 2048, /*seed=*/3));
}

TEST(PageRank, MatchesReferenceOnStar) {
  expect_matches_reference(graph::star(40));
}

TEST(PageRank, MassSumsToOne) {
  const auto el = graph::erdos_renyi(80, 200, /*seed=*/9);
  const auto result = pagerank(GraphView::from_edges(el, 4, machine()));
  const double sum =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, DanglingMassRedistributedUniformly) {
  // Isolated vertices (degree 0) are the dangling set in an undirected
  // graph; their rank must stay the uniform teleport share, and the total
  // must still sum to 1 (mass is redistributed, not dropped).
  const auto el =
      graph::disjoint_union(graph::complete(10), graph::empty_graph(10));
  const auto result = pagerank(GraphView::from_edges(el, 4, machine()));
  const double sum =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // All dangling vertices are structurally identical: equal rank.
  for (VertexId v = 11; v < 20; ++v)
    EXPECT_NEAR(result.rank[v], result.rank[10], 1e-12);
  // The clique vertices absorb strictly more mass than the isolates.
  EXPECT_GT(result.rank[0], result.rank[10]);
}

TEST(PageRank, IterationCapRespected) {
  KernelOptions options;
  // Degree-skewed graph: the uniform start is not stationary (on a regular
  // graph it is, and the residual would hit exactly zero in round one).
  options.tolerance = 0;
  options.max_iterations = 7;
  const auto el = graph::star(30);
  const auto result =
      pagerank(GraphView::from_edges(el, 4, machine()), options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.stats.rounds, 7u);
}

TEST(PageRank, ConvergedReportsResidualUnderTolerance) {
  KernelOptions options;
  options.tolerance = 1e-10;
  const auto el = graph::rmat(7, 800, /*seed=*/21);
  const auto result =
      pagerank(GraphView::from_edges(el, 4, machine()), options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.l1_residual, options.tolerance);
  EXPECT_LT(result.stats.rounds,
            static_cast<std::uint64_t>(options.max_iterations));
}

TEST(TopKRanks, TiesBreakTowardSmallerVertexId) {
  const std::vector<double> ranks = {0.2, 0.3, 0.2, 0.3, 0.0};
  const auto top = top_k_ranks(ranks, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].v, 1u);  // 0.3, smaller id first
  EXPECT_EQ(top[1].v, 3u);
  EXPECT_EQ(top[2].v, 0u);  // 0.2, smaller id first
  EXPECT_DOUBLE_EQ(top[0].rank, 0.3);
  EXPECT_DOUBLE_EQ(top[2].rank, 0.2);
}

TEST(TopKRanks, KLargerThanNClamps) {
  const std::vector<double> ranks = {0.5, 0.5};
  const auto top = top_k_ranks(ranks, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].v, 0u);
  EXPECT_EQ(top[1].v, 1u);
}

}  // namespace
}  // namespace lacc::kernel
