// Exact triangle counting via the masked L·Uᵀ SUMMA stages: closed-form
// counts, oracle agreement, robustness to dirty edge lists, and the
// bit-identical determinism contract across rank counts.
#include "kernel/kernels.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "kernel/reference.hpp"
#include "kernel/view.hpp"
#include "sim/machine.hpp"

namespace lacc::kernel {
namespace {

const sim::MachineModel& machine() {
  static const sim::MachineModel m = sim::MachineModel::edison();
  return m;
}

std::uint64_t count(const graph::EdgeList& el, int nranks) {
  return triangle_count(GraphView::from_edges(el, nranks, machine()))
      .triangles;
}

TEST(Triangles, CompleteGraphIsNChoose3) {
  // C(10, 3) = 120.
  for (const int nranks : {1, 4, 9})
    EXPECT_EQ(count(graph::complete(10), nranks), 120u);
}

TEST(Triangles, TriangleFreeGraphsCountZero) {
  EXPECT_EQ(count(graph::path(25), 4), 0u);
  EXPECT_EQ(count(graph::cycle(24), 4), 0u);
  EXPECT_EQ(count(graph::star(30), 4), 0u);
}

TEST(Triangles, SingleTriangle) { EXPECT_EQ(count(graph::cycle(3), 4), 1u); }

TEST(Triangles, MatchesReferenceOnRmat) {
  const auto el = graph::rmat(8, 3000, /*seed=*/13);
  const auto truth = reference_triangle_count(el);
  for (const int nranks : {1, 4, 9}) EXPECT_EQ(count(el, nranks), truth);
}

TEST(Triangles, MatchesReferenceOnMesh) {
  const auto el = graph::mesh3d(6, 6, 6);
  const auto truth = reference_triangle_count(el);
  EXPECT_GT(truth, 0u);  // the 27-point stencil is full of triangles
  for (const int nranks : {1, 4, 9}) EXPECT_EQ(count(el, nranks), truth);
}

TEST(Triangles, SelfLoopsAndDuplicateEdgesIgnored) {
  graph::EdgeList el(5);
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 0);
  el.add(0, 2);  // duplicate, reversed
  el.add(3, 3);  // self-loop
  el.add(1, 2);  // duplicate
  EXPECT_EQ(count(el, 4), 1u);
  EXPECT_EQ(reference_triangle_count(el), 1u);
}

TEST(Triangles, StageCountIsGridDimension) {
  const auto el = graph::complete(12);
  for (const int nranks : {1, 4, 9}) {
    const auto result =
        triangle_count(GraphView::from_edges(el, nranks, machine()));
    // q SUMMA stages for a q x q grid.
    std::uint64_t q = 1;
    while (static_cast<int>(q * q) < nranks) ++q;
    EXPECT_EQ(result.stats.rounds, q);
    EXPECT_GT(result.stats.modeled_seconds, 0.0);
  }
}

}  // namespace
}  // namespace lacc::kernel
