// GraphView producer equivalence: a from-scratch build, a stream-engine
// freeze, and a serve snapshot of the same accumulated graph must hand the
// kernels the identical structure — same vertex count, same stored entries,
// and bit-identical kernel results.  Block contents are compared through
// kernel outputs rather than raw arrays because DCSC columns are fenced to
// the owning virtual rank.
#include "kernel/view.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "kernel/kernels.hpp"
#include "serve/server.hpp"
#include "sim/machine.hpp"
#include "stream/engine.hpp"
#include "support/error.hpp"

namespace lacc::kernel {
namespace {

constexpr VertexId kN = 96;

graph::EdgeList test_graph() {
  return graph::erdos_renyi(kN, 220, /*seed=*/19);
}

TEST(GraphView, FromEdgesBasicProperties) {
  const auto el = test_graph();
  const auto view = GraphView::from_edges(el, 4, sim::MachineModel::edison());
  EXPECT_EQ(view.n(), kN);
  EXPECT_EQ(view.nranks(), 4);
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_GT(view.global_nnz(), 0u);
  // The construction session is a real SPMD run with a modeled cost.
  EXPECT_GT(view.build_modeled_seconds(), 0.0);
}

TEST(GraphView, StreamFreezeMatchesFromScratch) {
  const auto el = test_graph();
  for (const int nranks : {1, 4, 9}) {
    const auto fresh =
        GraphView::from_edges(el, nranks, sim::MachineModel::edison());

    stream::StreamEngine engine(kN, nranks, sim::MachineModel::edison());
    // Split the stream into three epochs so the freeze exercises base +
    // delta folding, not just the warm-load path.
    const std::size_t third = el.edges.size() / 3;
    for (std::size_t at = 0; at < el.edges.size(); at += third) {
      graph::EdgeList slice(kN);
      slice.edges.assign(
          el.edges.begin() + static_cast<std::ptrdiff_t>(at),
          el.edges.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(at + third, el.edges.size())));
      engine.ingest(slice);
      engine.advance_epoch();
    }
    const GraphView frozen = engine.freeze_view();

    EXPECT_EQ(frozen.n(), fresh.n());
    EXPECT_EQ(frozen.nranks(), fresh.nranks());
    EXPECT_EQ(frozen.global_nnz(), fresh.global_nnz());
    EXPECT_GT(frozen.epoch(), 0u);

    // Identical structure => bit-identical kernel answers.
    const auto b0 = bfs(fresh, 0);
    const auto b1 = bfs(frozen, 0);
    EXPECT_EQ(b0.dist, b1.dist);
    EXPECT_EQ(b0.parent, b1.parent);
    EXPECT_EQ(triangle_count(fresh).triangles,
              triangle_count(frozen).triangles);
  }
}

TEST(GraphView, ServeSnapshotMatchesFromScratch) {
  const auto el = test_graph();
  serve::ServeOptions options;
  options.batch_max_edges = 64;
  options.enable_kernel_queries = true;
  serve::Server server(kN, 4, sim::MachineModel::edison(), options);
  for (const graph::Edge& e : el.edges)
    ASSERT_EQ(server.insert_edge(e.u, e.v).status, serve::ServeStatus::kOk);
  server.flush();

  const auto snap = server.snapshot();
  ASSERT_NE(snap->view(), nullptr);
  const GraphView& served = *snap->view();
  const auto fresh =
      GraphView::from_edges(el, 4, sim::MachineModel::edison());
  EXPECT_EQ(served.n(), fresh.n());
  EXPECT_EQ(served.global_nnz(), fresh.global_nnz());
  EXPECT_EQ(bfs(served, 0).dist, bfs(fresh, 0).dist);
}

TEST(GraphView, FreezeWithoutResidentDeltaSharesBlocks) {
  const auto el = test_graph();
  stream::StreamEngine engine(kN, 4, sim::MachineModel::edison());
  engine.ingest(el);
  engine.advance_epoch();
  const GraphView frozen = engine.freeze_view();
  // Nothing uncompacted: the freeze shares every base block and pays no
  // modeled merge cost.
  EXPECT_EQ(frozen.build_modeled_seconds(), 0.0);
}

TEST(GraphView, ViewOutlivesItsEngine) {
  const auto el = test_graph();
  std::unique_ptr<GraphView> view;
  {
    stream::StreamEngine engine(kN, 4, sim::MachineModel::edison());
    engine.ingest(el);
    engine.advance_epoch();
    view = std::make_unique<GraphView>(engine.freeze_view());
  }
  // Blocks are shared_ptr-held: kernels still run after the engine dies.
  const auto fresh =
      GraphView::from_edges(el, 4, sim::MachineModel::edison());
  EXPECT_EQ(bfs(*view, 0).dist, bfs(fresh, 0).dist);
}

TEST(GraphView, BlockCountMustMatchRanks) {
  EXPECT_THROW(GraphView(8, 4, sim::MachineModel::edison(), 0, {}), Error);
}

}  // namespace
}  // namespace lacc::kernel
