// LatencyHistogram: bucket geometry, quantile estimates, concurrency.
#include "obs/latency.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace lacc::obs {
namespace {

TEST(LatencyHistogram, EmptyQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Buckets 0..15 hold their nanosecond value exactly.
  for (std::uint64_t ns = 0; ns < 16; ++ns) {
    EXPECT_EQ(LatencyHistogram::bucket_of(ns), ns);
    EXPECT_EQ(LatencyHistogram::bucket_mid_ns(ns), ns);
  }
}

TEST(LatencyHistogram, BucketMidIsWithinItsOwnBucket) {
  for (std::uint64_t ns : {16ull, 17ull, 1000ull, 123456ull, 1ull << 30,
                           1ull << 40, 1ull << 62}) {
    const std::size_t b = LatencyHistogram::bucket_of(ns);
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_mid_ns(b)),
              b)
        << ns;
  }
}

TEST(LatencyHistogram, QuantilesTrackRecordedDistribution) {
  LatencyHistogram h;
  // 90 samples near 1us, 10 near 1ms: p50 ~ 1e-6, p99 ~ 1e-3.
  for (int i = 0; i < 90; ++i) h.record_seconds(1e-6);
  for (int i = 0; i < 10; ++i) h.record_seconds(1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 1e-6, 1e-7);
  EXPECT_NEAR(h.quantile(0.99), 1e-3, 1e-4);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.95));
  EXPECT_GE(h.quantile(0.95), h.quantile(0.5));
}

TEST(LatencyHistogram, RelativeErrorStaysBounded) {
  // One sample per magnitude: the bucket midpoint must stay within ~6%.
  for (const double s : {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
    LatencyHistogram h;
    h.record_seconds(s);
    EXPECT_NEAR(h.quantile(1.0), s, s * 0.0625) << s;
  }
}

TEST(LatencyHistogram, ClampsGarbageToZeroBucket) {
  LatencyHistogram h;
  h.record_seconds(-1.0);
  h.record_seconds(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, MergeAddsSamples) {
  LatencyHistogram a, b;
  a.record_seconds(1e-6);
  b.record_seconds(1e-3);
  b.record_seconds(1e-3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.quantile(1.0), 1e-3, 1e-4);
}

TEST(LatencyHistogram, ConcurrentRecordersLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8, kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record_ns(static_cast<std::uint64_t>(t) * 1000 + 50);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace lacc::obs
