// lacc-metrics-v7 emitter: the document structure consumed by
// tools/check_obs_json.py and the perf trajectory.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "core/lacc_dist.hpp"
#include "graph/generators.hpp"
#include "sim/machine.hpp"

namespace lacc {
namespace {

std::string emit(const std::vector<obs::RunRecord>& runs,
                 const obs::Scalars& config = {{"scale", 0.25}}) {
  std::ostringstream out;
  obs::write_metrics_json(out, "metrics_test", config, runs);
  return out.str();
}

TEST(Metrics, SerialRunRecord) {
  auto rec = obs::make_run_record("serial", 0, {}, 0.0, 1.5,
                                  {{"edges", 42.0}});
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"schema\":\"lacc-metrics-v7\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"metrics_test\""), std::string::npos);
  // Static runs never carry the streaming-only epochs array, the
  // serving-only serve block, the durable-only durability block, or the
  // sharding-only shard block.
  EXPECT_EQ(json.find("\"epochs\""), std::string::npos);
  EXPECT_EQ(json.find("\"serve\""), std::string::npos);
  EXPECT_EQ(json.find("\"durability\""), std::string::npos);
  EXPECT_EQ(json.find("\"shard\""), std::string::npos);
  EXPECT_NE(json.find("\"word_bytes\":8"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serial\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks\":0"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"edges\":42"), std::string::npos);
  // Serial runs still carry the (all-zero) total block, so consumers can
  // treat every run uniformly.
  EXPECT_NE(json.find("\"total\":{"), std::string::npos);
  EXPECT_NE(json.find("\"phases\":{}"), std::string::npos);
}

TEST(Metrics, SpmdRunCarriesPhaseAggregates) {
  const auto el = graph::erdos_renyi(300, 900, 5);
  const auto run = core::lacc_dist(el, 4, sim::MachineModel::edison());
  auto rec = obs::make_run_record("spmd", 4, run.spmd.stats,
                                  run.modeled_seconds, run.spmd.wall_seconds);
  EXPECT_GT(rec.max.regions.count("cond-hook"), 0u);
  EXPECT_GT(rec.sum.total.messages, rec.max.total.messages);
  const std::string json = emit({std::move(rec)});
  for (const char* phase : {"\"cond-hook\"", "\"uncond-hook\"",
                            "\"shortcut\"", "\"starcheck\"", "\"iter\""})
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  for (const char* key :
       {"\"modeled_max\"", "\"modeled_sum\"", "\"comm_max\"",
        "\"compute_max\"", "\"wall_max\"", "\"messages_max\"",
        "\"messages_sum\"", "\"bytes_max\"", "\"bytes_sum\"",
        "\"words_max\"", "\"words_sum\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(Metrics, StreamingRunEmitsEpochsArray) {
  auto rec = obs::make_run_record("stream", 4, {}, 2.0, 0.5);
  rec.epochs.push_back({{"epoch", 1.0}, {"merges", 3.0}});
  rec.epochs.push_back({{"epoch", 2.0}, {"merges", 0.0}});
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"epochs\":[{\"epoch\":1,\"merges\":3},"
                      "{\"epoch\":2,\"merges\":0}]"),
            std::string::npos);
}

TEST(Metrics, ServingRunEmitsServeBlock) {
  auto rec = obs::make_run_record("serve", 4, {}, 0.0, 0.5);
  rec.serve = {{"throughput_rps", 1000.0},
               {"read_p50_ms", 0.125},
               {"read_p99_ms", 2.5}};
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"serve\":{\"throughput_rps\":1000,"
                      "\"read_p50_ms\":0.125,\"read_p99_ms\":2.5}"),
            std::string::npos);
}

TEST(Metrics, DurableRunEmitsDurabilityBlock) {
  auto rec = obs::make_run_record("durable", 4, {}, 0.0, 0.5);
  rec.durability = {{"wal_records", 24.0},
                    {"fsyncs", 30.0},
                    {"recovered", 1.0}};
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"durability\":{\"wal_records\":24,"
                      "\"fsyncs\":30,\"recovered\":1}"),
            std::string::npos);
}

TEST(Metrics, ShardedRunEmitsNestedShardBlock) {
  auto rec = obs::make_run_record("sharded", 0, {}, 0.0, 0.5);
  rec.shard = {{"shards", 2.0}, {"global_epochs", 7.0}};
  rec.shard_per_shard.push_back({{"shard", 0.0}, {"boundary_raw", 3.0}});
  rec.shard_per_shard.push_back({{"shard", 1.0}, {"boundary_raw", 3.0}});
  rec.shard_per_replica.push_back({{"replica", 0.0}, {"reads", 100.0}});
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"shard\":{\"totals\":{\"shards\":2,"
                      "\"global_epochs\":7},"
                      "\"per_shard\":[{\"shard\":0,\"boundary_raw\":3},"
                      "{\"shard\":1,\"boundary_raw\":3}],"
                      "\"per_replica\":[{\"replica\":0,\"reads\":100}]}"),
            std::string::npos);
}

TEST(Metrics, AnalyticsRunEmitsKernelsArray) {
  auto rec = obs::make_run_record("analytics", 0, {}, 0.0, 0.5);
  rec.kernels.push_back(
      {{"kernel_id", 0.0}, {"invocations", 1.0}, {"rounds", 4.0}});
  rec.kernels.push_back(
      {{"kernel_id", 2.0}, {"invocations", 2.0}, {"triangles", 9.0}});
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"kernels\":[{\"kernel_id\":0,\"invocations\":1,"
                      "\"rounds\":4},"
                      "{\"kernel_id\":2,\"invocations\":2,"
                      "\"triangles\":9}]"),
            std::string::npos);
  // A kernel-free run omits the key entirely.
  const std::string bare =
      emit({obs::make_run_record("plain", 0, {}, 0.0, 0.5)});
  EXPECT_EQ(bare.find("\"kernels\""), std::string::npos);
}

TEST(Metrics, NonFiniteScalarsBecomeNull) {
  auto rec = obs::make_run_record(
      "bad", 0, {}, 0.0, 0.0,
      {{"nan_value", std::nan("")},
       {"inf_value", std::numeric_limits<double>::infinity()}});
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("\"nan_value\":null"), std::string::npos);
  EXPECT_NE(json.find("\"inf_value\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan,"), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);
}

TEST(Metrics, StringsAreEscaped) {
  auto rec = obs::make_run_record("quote\"backslash\\tab\t", 0, {}, 0.0, 0.0);
  const std::string json = emit({std::move(rec)});
  EXPECT_NE(json.find("quote\\\"backslash\\\\tab\\t"), std::string::npos);
}

TEST(Metrics, WriteFileIsNoOpWithoutEnv) {
  // LACC_METRICS_OUT is unset in the test environment, so this must write
  // nothing and return the empty path.
  ASSERT_EQ(std::getenv("LACC_METRICS_OUT"), nullptr);
  EXPECT_EQ(obs::write_metrics_file("metrics_test", {}, {}), "");
}

}  // namespace
}  // namespace lacc
