// SpanLog: nesting, attribution, and the inclusive rollup contract that
// keeps per-phase aggregates identical with and without collective tracing.
#include "obs/stats.hpp"

#include <gtest/gtest.h>

namespace lacc::obs {
namespace {

OpCounters comm(double seconds, std::uint64_t messages, std::uint64_t bytes) {
  OpCounters c;
  c.comm_seconds = seconds;
  c.messages = messages;
  c.bytes = bytes;
  return c;
}

TEST(SpanLog, SingleSpanRecordsIntervalAndCharges) {
  SpanLog log;
  const auto id = log.open("phase", 1.0, 10.0, 3);
  log.current()->compute_seconds += 0.5;
  log.close(id, 2.5, 10.2);

  ASSERT_EQ(log.spans().size(), 1u);
  const Span& span = log.spans()[0];
  EXPECT_EQ(span.name, "phase");
  EXPECT_EQ(span.parent, -1);
  EXPECT_EQ(span.depth, 0);
  EXPECT_EQ(span.tag, 3);
  EXPECT_DOUBLE_EQ(span.modeled_begin, 1.0);
  EXPECT_DOUBLE_EQ(span.modeled_end, 2.5);
  EXPECT_DOUBLE_EQ(span.total.compute_seconds, 0.5);
  EXPECT_NEAR(span.total.wall_seconds, 0.2, 1e-12);
  EXPECT_FALSE(log.any_open());
}

TEST(SpanLog, ChargesGoToInnermostOpenSpan) {
  SpanLog log;
  const auto outer = log.open("outer", 0.0, 0.0);
  log.current()->add(comm(1.0, 1, 8));
  const auto inner = log.open("inner", 1.0, 0.0);
  log.current()->add(comm(2.0, 2, 16));
  log.close(inner, 3.0, 0.0);
  log.current()->add(comm(3.0, 4, 32));
  log.close(outer, 6.0, 0.0);

  const Span& o = log.spans()[outer];
  const Span& i = log.spans()[inner];
  EXPECT_DOUBLE_EQ(i.self.comm_seconds, 2.0);
  EXPECT_DOUBLE_EQ(i.total.comm_seconds, 2.0);
  // Outer's self excludes the inner charge; its total includes it.
  EXPECT_DOUBLE_EQ(o.self.comm_seconds, 4.0);
  EXPECT_DOUBLE_EQ(o.total.comm_seconds, 6.0);
  EXPECT_EQ(o.total.messages, 7u);
  EXPECT_EQ(o.total.bytes, 56u);
  EXPECT_EQ(i.parent, static_cast<std::int32_t>(outer));
  EXPECT_EQ(i.depth, 1);
}

TEST(SpanLog, RegionTotalsAreInvariantToSubdivision) {
  // The same charges, recorded flat vs. subdivided into child spans, must
  // produce the same per-name inclusive aggregate for the parent.
  RankStats flat;
  {
    auto& log = flat.spans;
    const auto id = log.open("phase", 0.0, 0.0);
    log.current()->add(comm(5.0, 10, 80));
    log.close(id, 5.0, 0.0);
  }
  RankStats split;
  {
    auto& log = split.spans;
    const auto id = log.open("phase", 0.0, 0.0);
    log.current()->add(comm(1.0, 2, 16));
    const auto a = log.open("coll:a", 1.0, 0.0);
    log.current()->add(comm(3.0, 6, 48));
    log.close(a, 4.0, 0.0);
    const auto b = log.open("coll:b", 4.0, 0.0);
    log.current()->add(comm(1.0, 2, 16));
    log.close(b, 5.0, 0.0);
    log.close(id, 5.0, 0.0);
  }
  const auto lhs = flat.region_totals().at("phase");
  const auto rhs = split.region_totals().at("phase");
  EXPECT_DOUBLE_EQ(lhs.comm_seconds, rhs.comm_seconds);
  EXPECT_EQ(lhs.messages, rhs.messages);
  EXPECT_EQ(lhs.bytes, rhs.bytes);
}

TEST(SpanLog, RegionTotalsSumRepeatedNames) {
  RankStats stats;
  auto& log = stats.spans;
  for (int iter = 0; iter < 3; ++iter) {
    const auto id = log.open("iter", iter, 0.0, iter);
    log.current()->add(comm(1.0, 1, 8));
    log.close(id, iter + 1.0, 0.0);
  }
  const auto totals = stats.region_totals();
  EXPECT_DOUBLE_EQ(totals.at("iter").comm_seconds, 3.0);
  EXPECT_EQ(totals.at("iter").messages, 3u);
}

TEST(SpanLog, ReductionsAcrossRanks) {
  std::vector<RankStats> per_rank(2);
  for (int r = 0; r < 2; ++r) {
    auto& stats = per_rank[static_cast<std::size_t>(r)];
    const auto id = stats.spans.open("phase", 0.0, 0.0);
    stats.spans.current()->add(comm(r + 1.0, 1, 8));
    stats.spans.close(id, r + 1.0, 0.0);
    stats.total.add(comm(r + 1.0, 1, 8));
    stats.counters["hooks"] = static_cast<std::uint64_t>(r + 1);
  }
  const auto mx = max_over_ranks(per_rank);
  const auto sm = sum_over_ranks(per_rank);
  EXPECT_DOUBLE_EQ(mx.regions.at("phase").comm_seconds, 2.0);
  EXPECT_DOUBLE_EQ(sm.regions.at("phase").comm_seconds, 3.0);
  EXPECT_DOUBLE_EQ(mx.total.comm_seconds, 2.0);
  EXPECT_DOUBLE_EQ(sm.total.comm_seconds, 3.0);
  EXPECT_EQ(mx.counters.at("hooks"), 2u);
  EXPECT_EQ(sm.counters.at("hooks"), 3u);
}

TEST(SpanLog, OutOfOrderCloseIsAnError) {
  SpanLog log;
  const auto outer = log.open("outer", 0.0, 0.0);
  log.open("inner", 0.0, 0.0);
  EXPECT_THROW(log.close(outer, 1.0, 0.0), Error);
}

}  // namespace
}  // namespace lacc::obs
