// Chrome trace export: structure of the emitted JSON and the guarantee
// that enabling tracing never perturbs modeled results.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/lacc_dist.hpp"
#include "graph/generators.hpp"
#include "obs/config.hpp"
#include "sim/machine.hpp"

namespace lacc {
namespace {

/// Restore the process-wide trace flag on scope exit so test order and the
/// LACC_TRACE environment don't leak between tests.
class TraceGuard {
 public:
  explicit TraceGuard(bool enabled) : saved_(obs::trace_enabled()) {
    obs::set_trace_enabled(enabled);
  }
  ~TraceGuard() { obs::set_trace_enabled(saved_); }

 private:
  bool saved_;
};

graph::EdgeList test_graph() { return graph::erdos_renyi(300, 900, 5); }

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++count;
  return count;
}

TEST(ChromeTrace, CoversAllPhasesOnEveryRank) {
  TraceGuard guard(true);
  const auto result = core::lacc_dist(test_graph(), 4,
                                      sim::MachineModel::edison());
  std::ostringstream out;
  obs::write_chrome_trace(out, result.spmd.stats);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"lacc-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks\":4"), std::string::npos);
  for (const char* phase :
       {"\"iter\"", "\"cond-hook\"", "\"uncond-hook\"", "\"shortcut\"",
        "\"starcheck\"", "\"coll:allreduce\"", "\"op:mxv\""})
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  // One thread_name metadata event per rank.
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 4u);
  // Balanced JSON (cheap structural check; the Python validator in
  // tools/check_obs_json.py does the full schema pass in CI).
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ChromeTrace, DisabledTracingStillRecordsRegions) {
  TraceGuard guard(false);
  const auto result = core::lacc_dist(test_graph(), 4,
                                      sim::MachineModel::edison());
  std::ostringstream out;
  obs::write_chrome_trace(out, result.spmd.stats);
  const std::string json = out.str();
  // Phase regions are always on (the benches need them); only the
  // collective/kernel subdivision is gated on the trace flag.
  EXPECT_NE(json.find("\"cond-hook\""), std::string::npos);
  EXPECT_EQ(json.find("\"coll:"), std::string::npos);
  EXPECT_EQ(json.find("\"op:"), std::string::npos);
}

TEST(ChromeTrace, TracingDoesNotChangeModeledResults) {
  double modeled_off = 0, modeled_on = 0;
  std::vector<VertexId> parent_off, parent_on;
  {
    TraceGuard guard(false);
    auto run = core::lacc_dist(test_graph(), 4, sim::MachineModel::edison());
    modeled_off = run.modeled_seconds;
    parent_off = run.cc.parent;
  }
  {
    TraceGuard guard(true);
    auto run = core::lacc_dist(test_graph(), 4, sim::MachineModel::edison());
    modeled_on = run.modeled_seconds;
    parent_on = run.cc.parent;
  }
  EXPECT_EQ(modeled_off, modeled_on);  // bit-identical, not just close
  EXPECT_EQ(parent_off, parent_on);
}

}  // namespace
}  // namespace lacc
