// Property-based cross-validation: every connected-components implementation
// in the repository must produce the same partition as union-find on a
// randomized sweep of graph families, sizes, and seeds, and the AS-family
// algorithms must additionally return flat (star-shaped) parent vectors and
// converge in O(log n) iterations.
#include <gtest/gtest.h>

#include "baselines/multistep_dist.hpp"
#include "baselines/parconnect.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/union_find.hpp"
#include "core/fastsv.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace lacc::core {
namespace {

struct Workload {
  std::string family;
  std::uint64_t seed;

  graph::EdgeList build() const {
    const VertexId n = 600 + 37 * (seed % 11);
    if (family == "er-sparse") return graph::erdos_renyi(n, n / 2, seed);
    if (family == "er-medium") return graph::erdos_renyi(n, 2 * n, seed);
    if (family == "er-dense") return graph::erdos_renyi(n, 8 * n, seed);
    if (family == "clustered")
      return graph::clustered_components(n, 20 + seed % 17, 5.0, seed);
    if (family == "forest") return graph::path_forest(n, 8 + seed % 9, seed);
    if (family == "rmat") return graph::rmat(9, 3 * n, seed);
    if (family == "prefattach")
      return graph::preferential_attachment(n, 3, seed, 0.15);
    if (family == "permuted-clustered")
      return graph::permute_vertices(
          graph::clustered_components(n, 25, 6.0, seed), seed + 1);
    throw Error("unknown family " + family);
  }
};

class CcProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(CcProperty, AllSerialAlgorithmsAgreeWithUnionFind) {
  const auto el = GetParam().build();
  const graph::Csr g(el);
  const auto truth = baselines::union_find_cc(g);
  EXPECT_TRUE(same_partition(lacc_grb(g).parent, truth.parent));
  EXPECT_TRUE(same_partition(awerbuch_shiloach(g).parent, truth.parent));
  EXPECT_TRUE(same_partition(baselines::bfs_cc(g).parent, truth.parent));
  EXPECT_TRUE(
      same_partition(baselines::shiloach_vishkin(g).parent, truth.parent));
  EXPECT_TRUE(
      same_partition(baselines::label_propagation(g).parent, truth.parent));
  EXPECT_TRUE(same_partition(baselines::multistep(g).parent, truth.parent));
}

TEST_P(CcProperty, DistributedAlgorithmsAgreeWithUnionFind) {
  const auto el = GetParam().build();
  const auto truth = baselines::union_find_cc(el);
  const auto lacc = lacc_dist(el, 9, sim::MachineModel::local());
  EXPECT_TRUE(same_partition(lacc.cc.parent, truth.parent));
  LaccOptions cyclic;
  cyclic.cyclic_vectors = true;
  const auto lacc_cyc = lacc_dist(el, 4, sim::MachineModel::local(), cyclic);
  EXPECT_TRUE(same_partition(lacc_cyc.cc.parent, truth.parent));
  const auto fsv = fastsv_dist(el, 4, sim::MachineModel::local());
  EXPECT_TRUE(same_partition(fsv.cc.parent, truth.parent));
  const auto pc = baselines::parconnect_dist(el, 4, sim::MachineModel::local());
  EXPECT_TRUE(same_partition(pc.cc.parent, truth.parent));
  const auto ms = baselines::multistep_dist(el, 4, sim::MachineModel::local());
  EXPECT_TRUE(same_partition(ms.cc.parent, truth.parent));
}

TEST_P(CcProperty, AsFamilyReturnsFlatForestsInLogIterations) {
  const auto el = GetParam().build();
  const graph::Csr g(el);
  for (const auto& result :
       {lacc_grb(g), awerbuch_shiloach(g), fastsv(g)}) {
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(result.parent[result.parent[v]], result.parent[v]);
    EXPECT_LE(result.iterations, 40);  // O(log n) with generous headroom
    // Trace invariants: converged counts are monotone and never exceed n.
    std::uint64_t prev = 0;
    for (const auto& rec : result.trace) {
      EXPECT_GE(rec.converged_vertices, prev);
      EXPECT_LE(rec.converged_vertices, g.num_vertices());
      EXPECT_LE(rec.active_vertices, g.num_vertices());
      prev = rec.converged_vertices;
    }
  }
}

std::vector<Workload> sweep() {
  std::vector<Workload> out;
  for (const char* family :
       {"er-sparse", "er-medium", "er-dense", "clustered", "forest", "rmat",
        "prefattach", "permuted-clustered"})
    for (std::uint64_t seed : {1ull, 2ull, 3ull})
      out.push_back({family, seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcProperty, ::testing::ValuesIn(sweep()),
                         [](const auto& info) {
                           std::string name = info.param.family + "_s" +
                                              std::to_string(info.param.seed);
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace lacc::core
