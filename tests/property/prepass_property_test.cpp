// Property-based validation of the Afforest-style sampling pre-pass: with
// `sampling_prepass` on, lacc_dist must produce labels bit-identical (after
// normalize_labels) to the prepass-off run across rank counts, every
// existing option combo, and the paper's many-component stand-ins — i.e.
// the pre-pass is a pure accelerator, never a semantic change.  The OpenMP
// variant's lock-free pre-pass must likewise keep partitions and stay
// deterministic across repeated runs (its CAS races may vary tree shapes,
// but relabeling to component minima must erase that).
#include <gtest/gtest.h>

#include <string>

#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_omp.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/testproblems.hpp"

namespace lacc::core {
namespace {

/// Small-scale versions of the paper's stand-ins: archaea/eukarya are the
/// many-component protein graphs where the pre-pass matters most, M3 is the
/// sparse near-single-component counterexample.
const graph::EdgeList& problem(const std::string& name) {
  static const auto problems = graph::make_test_problems(0.02);
  return graph::find_problem(problems, name).graph;
}

struct Workload {
  std::string graph;
  int ranks;
  bool sparse;
  bool hypercube;
  bool cyclic;

  LaccOptions options() const {
    LaccOptions o;
    o.use_sparse_vectors = sparse;
    o.sparse_uncond_hooking = sparse;
    o.hypercube_alltoall = hypercube;
    o.cyclic_vectors = cyclic;
    return o;
  }
};

class PrepassProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(PrepassProperty, LabelIdenticalToPrepassOffAndMatchesTruth) {
  const Workload& w = GetParam();
  const auto& el = problem(w.graph);
  const auto truth = baselines::union_find_cc(el);

  const auto off =
      lacc_dist(el, w.ranks, sim::MachineModel::local(), w.options());
  EXPECT_FALSE(off.cc.prepass.ran);

  LaccOptions on = w.options();
  on.sampling_prepass = true;
  const auto with =
      lacc_dist(el, w.ranks, sim::MachineModel::local(), on);
  EXPECT_TRUE(with.cc.prepass.ran);
  EXPECT_EQ(with.cc.prepass.sample_rounds, on.sample_rounds);
  EXPECT_LE(with.cc.prepass.resolved_vertices, el.n);

  EXPECT_EQ(normalize_labels(with.cc.parent), normalize_labels(off.cc.parent));
  EXPECT_TRUE(same_partition(with.cc.parent, truth.parent));
}

std::vector<Workload> sweep() {
  std::vector<Workload> out;
  for (const char* graph : {"archaea", "eukarya", "M3"})
    for (const int ranks : {1, 4, 9})
      for (const bool sparse : {false, true})
        for (const bool hypercube : {false, true})
          for (const bool cyclic : {false, true})
            out.push_back({graph, ranks, sparse, hypercube, cyclic});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrepassProperty, ::testing::ValuesIn(sweep()),
                         [](const auto& info) {
                           const Workload& w = info.param;
                           return w.graph + "_r" + std::to_string(w.ranks) +
                                  (w.sparse ? "_sparse" : "_dense") +
                                  (w.hypercube ? "_hc" : "_pw") +
                                  (w.cyclic ? "_cyc" : "_blk");
                         });

/// Tunables must not change semantics either: any sample_rounds count and
/// frequent_skip off still land on the prepass-off labels.
TEST(PrepassTunables, SampleRoundsAndSkipSweepStayLabelIdentical) {
  for (const char* graph : {"eukarya", "M3"}) {
    const auto& el = problem(graph);
    for (const int ranks : {1, 4, 9}) {
      const auto off = lacc_dist(el, ranks, sim::MachineModel::local());
      const auto baseline = normalize_labels(off.cc.parent);
      for (const int rounds : {0, 1, 3}) {
        LaccOptions o;
        o.sampling_prepass = true;
        o.sample_rounds = rounds;
        const auto on = lacc_dist(el, ranks, sim::MachineModel::local(), o);
        EXPECT_EQ(normalize_labels(on.cc.parent), baseline)
            << graph << " ranks=" << ranks << " rounds=" << rounds;
      }
      LaccOptions noskip;
      noskip.sampling_prepass = true;
      noskip.frequent_skip = false;
      const auto on = lacc_dist(el, ranks, sim::MachineModel::local(), noskip);
      EXPECT_EQ(normalize_labels(on.cc.parent), baseline)
          << graph << " ranks=" << ranks << " frequent_skip=off";
      // Without the skip every local edge is linked, so nothing survives to
      // the rounds: the pre-pass alone must resolve each component locally
      // when running on one rank.
      if (ranks == 1)
        EXPECT_TRUE(same_partition(
            on.cc.parent, baselines::union_find_cc(el).parent));
    }
  }
}

/// The shared-memory pre-pass is the lock-free one (GAP-style CAS Link);
/// its tree shapes race, but the partition and the final parents must not.
TEST(PrepassOmp, LockFreePrepassIsDeterministicAndCorrect) {
  for (const char* name : {"archaea", "eukarya", "M3"}) {
    const auto& el = problem(name);
    const graph::Csr g(el);
    const auto truth = baselines::union_find_cc(g);

    LaccOptions o;
    o.sampling_prepass = true;
    const auto a = awerbuch_shiloach_omp(g, o);
    const auto b = awerbuch_shiloach_omp(g, o);
    EXPECT_TRUE(a.prepass.ran);
    EXPECT_TRUE(same_partition(a.parent, truth.parent)) << name;
    EXPECT_EQ(a.parent, b.parent) << name;  // racy link, deterministic result

    const auto off = awerbuch_shiloach_omp(g);
    EXPECT_FALSE(off.prepass.ran);
    EXPECT_TRUE(same_partition(a.parent, off.parent)) << name;
  }
}

}  // namespace
}  // namespace lacc::core
