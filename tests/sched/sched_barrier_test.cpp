// Model-check suite for sim::BasicBarrier under the scheduler shims: the
// generation protocol, the acq_rel publication chain the collectives rely
// on, poison release, and retired-rank detection — on every explored
// schedule (spin_bound is 1 under the shims, so both the spin and the
// sleep path are exercised without widening the tree).
#include <gtest/gtest.h>

#include <memory>

#include "sched/model.hpp"
#include "sched/shim.hpp"
#include "sim/barrier.hpp"

namespace {

using Policy = lacc::sched::SchedSyncPolicy;
using Barrier = lacc::sim::BasicBarrier<Policy>;
using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;

std::shared_ptr<lacc::sched::atomic<bool>> make_poison() {
  return std::make_shared<lacc::sched::atomic<bool>>(false);
}

TEST(SchedBarrier, PublishesSlotWritesAcrossTheBarrier) {
  Options o;
  o.name = "barrier-publication";
  o.max_executions = 20000;  // exhaustive DFS prefix of a very wide tree
  const Result r = explore(o, [] {
    struct Shared {
      std::shared_ptr<lacc::sched::atomic<bool>> poison = make_poison();
      Barrier barrier{2, poison};
      // Stand-ins for CommContext slots: written relaxed before arrival,
      // read relaxed after release — exactly how collectives post buffers.
      lacc::sched::atomic<int> slot0{0}, slot1{0};
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread t1([s] {
      s->slot1.store(11, std::memory_order_relaxed);
      s->barrier.arrive_and_wait();
      LACC_SCHED_ASSERT(s->slot0.load(std::memory_order_relaxed) == 10);
    });
    s->slot0.store(10, std::memory_order_relaxed);
    s->barrier.arrive_and_wait();
    LACC_SCHED_ASSERT(s->slot1.load(std::memory_order_relaxed) == 11);
    t1.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedBarrier, GenerationReusesCleanlyAcrossSupersteps) {
  Options o;
  o.name = "barrier-reuse";
  o.max_executions = 20000;  // exhaustive within a generous cap
  const Result r = explore(o, [] {
    struct Shared {
      std::shared_ptr<lacc::sched::atomic<bool>> poison = make_poison();
      Barrier barrier{2, poison};
      lacc::sched::atomic<int> phase1{0};
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread t1([s] {
      s->barrier.arrive_and_wait();
      s->phase1.store(1, std::memory_order_relaxed);
      s->barrier.arrive_and_wait();
    });
    s->barrier.arrive_and_wait();
    s->barrier.arrive_and_wait();
    // Two crossings: the second barrier's release chain publishes writes
    // made strictly between the two.
    LACC_SCHED_ASSERT(s->phase1.load(std::memory_order_relaxed) == 1);
    t1.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedBarrier, PoisonReleasesAParkedSibling) {
  Options o;
  o.name = "barrier-poison";
  const Result r = explore(o, [] {
    struct Shared {
      std::shared_ptr<lacc::sched::atomic<bool>> poison = make_poison();
      Barrier barrier{2, poison};
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread t1([s] { s->barrier.poison(); });
    bool released = false;
    try {
      s->barrier.arrive_and_wait();
    } catch (const lacc::sim::Poisoned&) {
      released = true;
    }
    t1.join();
    // The sibling never arrives, so the only way out is the poison.
    LACC_SCHED_ASSERT(released);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedBarrier, RetiredSiblingTurnsGuaranteedDeadlockIntoAnError) {
  Options o;
  o.name = "barrier-retired";
  const Result r = explore(o, [] {
    struct Shared {
      std::shared_ptr<lacc::sched::atomic<bool>> poison = make_poison();
      Barrier barrier{2, poison};
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread t1([s] { s->barrier.note_retired(); });
    bool flagged = false;
    try {
      s->barrier.arrive_and_wait();
    } catch (const lacc::check::ConformanceError&) {
      flagged = true;
    }
    t1.join();
    LACC_SCHED_ASSERT(flagged);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedBarrier, ThreeRanksPublishUnderRandomExploration) {
  Options o;
  o.name = "barrier-3rank-random";
  o.random_executions = 300;
  const Result r = explore(o, [] {
    struct Shared {
      std::shared_ptr<lacc::sched::atomic<bool>> poison = make_poison();
      Barrier barrier{3, poison};
      lacc::sched::atomic<int> sum{0};
    };
    auto s = std::make_shared<Shared>();
    auto rankfn = [s](int value) {
      s->sum.fetch_add(value, std::memory_order_relaxed);
      s->barrier.arrive_and_wait();
      LACC_SCHED_ASSERT(s->sum.load(std::memory_order_relaxed) == 1 + 2 + 4);
    };
    lacc::sched::thread t1([rankfn] { rankfn(2); });
    lacc::sched::thread t2([rankfn] { rankfn(4); });
    rankfn(1);
    t1.join();
    t2.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

}  // namespace
