// Model-check suite for obs::BasicLatencyHistogram instantiated with the
// scheduler shims: the count_/bucket release-acquire edge and the
// wait-free recording path, verified on every explored schedule.
#include <gtest/gtest.h>

#include <memory>

#include "obs/latency.hpp"
#include "sched/model.hpp"
#include "sched/shim.hpp"

namespace {

using Hist = lacc::obs::BasicLatencyHistogram<lacc::sched::SchedSyncPolicy>;
using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;

constexpr std::uint64_t kSampleNs = 1000;  // all writers hit one bucket

// The histogram's documented invariant: a reader that observes count() == c
// also observes at least c bucket increments (record_ns publishes count
// with release; count() acquires).  Reading count FIRST is essential — the
// bucket can only grow afterwards.
void reader_invariant(const Hist& h) {
  const std::uint64_t c = h.count();
  const std::uint64_t b = h.bucket_count(Hist::bucket_of(kSampleNs));
  LACC_SCHED_ASSERT(b >= c);
}

TEST(SchedHistogram, CountNeverOvertakesBucketsOneWriter) {
  Options o;
  o.name = "hist-1w";
  const Result r = explore(o, [] {
    auto h = std::make_shared<Hist>();
    lacc::sched::thread w([h] {
      h->record_ns(kSampleNs);
      h->record_ns(kSampleNs);
    });
    reader_invariant(*h);
    reader_invariant(*h);
    w.join();
    LACC_SCHED_ASSERT(h->count() == 2);
    LACC_SCHED_ASSERT(h->bucket_count(Hist::bucket_of(kSampleNs)) == 2);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedHistogram, CountNeverOvertakesBucketsTwoWriters) {
  Options o;
  o.name = "hist-2w";
  const Result r = explore(o, [] {
    auto h = std::make_shared<Hist>();
    auto writer = [h] { h->record_ns(kSampleNs); };
    lacc::sched::thread a(writer), b(writer);
    reader_invariant(*h);
    a.join();
    b.join();
    // Post-join: joins give happens-before, totals are exact.
    LACC_SCHED_ASSERT(h->count() == 2);
    LACC_SCHED_ASSERT(h->bucket_count(Hist::bucket_of(kSampleNs)) == 2);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedHistogram, MergePublishesUnderTheSameInvariant) {
  Options o;
  o.name = "hist-merge";
  // merge() walks all ~1000 buckets and every load is a schedule point, so
  // the exhaustive tree is astronomically wide: seeded random sample.
  o.random_executions = 300;
  const Result r = explore(o, [] {
    auto src = std::make_shared<Hist>();
    auto dst = std::make_shared<Hist>();
    src->record_ns(kSampleNs);  // single-threaded prologue
    lacc::sched::thread m([src, dst] { dst->merge(*src); });
    reader_invariant(*dst);
    m.join();
    LACC_SCHED_ASSERT(dst->count() == 1);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

}  // namespace
