// Model-check suite for serve::BasicIngestQueue under the scheduler shims:
// ticket uniqueness and FIFO exactly-once delivery, shed-vs-block
// admission, watermark waits, and deadlock freedom of the stop/flush
// protocol, on every explored schedule (or a seeded random sample where
// the exhaustive tree is too wide).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/model.hpp"
#include "sched/shim.hpp"
#include "serve/ingest_queue.hpp"

namespace {

struct Item {
  int producer = 0;
  std::uint64_t seq = 0;
};

using Queue = lacc::serve::BasicIngestQueue<lacc::sched::SchedSyncPolicy, Item>;
using Push = Queue::Push;
using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;

// Drain helper: pop batches (deadline fires immediately when chosen) and
// advance the applied watermark until `want` items have been collected.
void drain(Queue& q, std::vector<Item>& got, std::size_t want,
           std::size_t max_batch) {
  std::vector<Item> batch;
  while (got.size() < want) {
    if (!q.pop_batch(batch, max_batch, [](const Item&) { return 0; })) break;
    got.insert(got.end(), batch.begin(), batch.end());
    if (!batch.empty()) q.mark_applied(batch.back().seq);
  }
}

TEST(SchedIngestQueue, TicketsAreFifoAndExactlyOnce) {
  Options o;
  o.name = "ingest-fifo";
  o.max_executions = 20000;  // exhaustive DFS prefix of a very wide tree
  const Result r = explore(o, [] {
    auto q = std::make_shared<Queue>(/*capacity=*/4, /*shed=*/false);
    lacc::sched::thread producer([q] {
      std::uint64_t last = 0;
      for (int i = 0; i < 3; ++i) {
        const auto pr = q->push([&](std::uint64_t seq) {
          return Item{0, seq};
        });
        LACC_SCHED_ASSERT(pr.outcome == Push::kAccepted);
        LACC_SCHED_ASSERT(pr.seq == last + 1);  // tickets dense + increasing
        last = pr.seq;
      }
      // Read-your-writes: parks on the watermark until the consumer covers
      // the producer's final ticket.
      LACC_SCHED_ASSERT(q->wait_for(last));
    });
    std::vector<Item> got;
    drain(*q, got, 3, /*max_batch=*/2);
    producer.join();
    q->stop();
    std::vector<Item> rest;
    LACC_SCHED_ASSERT(!q->pop_batch(rest, 2, [](const Item&) { return 0; }));
    LACC_SCHED_ASSERT(got.size() == 3);
    for (std::size_t i = 0; i < got.size(); ++i)
      LACC_SCHED_ASSERT(got[i].seq == i + 1);  // FIFO, nothing lost or duplicated
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedIngestQueue, TwoProducersNeverShareOrSkipTickets) {
  Options o;
  o.name = "ingest-2producers";
  o.random_executions = 400;  // exhaustive tree is too wide; seeded sample
  const Result r = explore(o, [] {
    auto q = std::make_shared<Queue>(/*capacity=*/4, /*shed=*/false);
    auto produce = [q](int who) {
      for (int i = 0; i < 2; ++i) {
        const auto pr = q->push([&](std::uint64_t seq) {
          return Item{who, seq};
        });
        LACC_SCHED_ASSERT(pr.outcome == Push::kAccepted);
      }
    };
    lacc::sched::thread p1([produce] { produce(1); });
    lacc::sched::thread p2([produce] { produce(2); });
    std::vector<Item> got;
    drain(*q, got, 4, /*max_batch=*/3);
    p1.join();
    p2.join();
    LACC_SCHED_ASSERT(got.size() == 4);
    for (std::size_t i = 0; i < got.size(); ++i)
      LACC_SCHED_ASSERT(got[i].seq == i + 1);  // dense even when racing
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedIngestQueue, BlockedProducerIsReleasedBySpace) {
  Options o;
  o.name = "ingest-backpressure";
  const Result r = explore(o, [] {
    auto q = std::make_shared<Queue>(/*capacity=*/1, /*shed=*/false);
    lacc::sched::thread producer([q] {
      for (int i = 0; i < 2; ++i) {
        const auto pr = q->push([&](std::uint64_t seq) {
          return Item{0, seq};
        });
        // Block admission: the second push parks until the consumer frees
        // the slot, but it is never shed or rejected.
        LACC_SCHED_ASSERT(pr.outcome == Push::kAccepted);
      }
    });
    std::vector<Item> got;
    drain(*q, got, 2, /*max_batch=*/1);
    producer.join();
    LACC_SCHED_ASSERT(got.size() == 2);
    LACC_SCHED_ASSERT(got[0].seq == 1 && got[1].seq == 2);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedIngestQueue, ShedAdmissionRejectsOnlyWhenFull) {
  Options o;
  o.name = "ingest-shed";
  const Result r = explore(o, [] {
    // Single-threaded protocol check under the shims: outcomes are exact.
    Queue q(/*capacity=*/1, /*shed=*/true);
    auto mk = [](std::uint64_t seq) { return Item{0, seq}; };
    const auto a = q.push(mk);
    LACC_SCHED_ASSERT(a.outcome == Push::kAccepted && a.seq == 1);
    const auto b = q.push(mk);
    LACC_SCHED_ASSERT(b.outcome == Push::kShed);  // full: shed, no ticket burned
    std::vector<Item> batch;
    LACC_SCHED_ASSERT(q.pop_batch(batch, 2, [](const Item&) { return 0; }));
    LACC_SCHED_ASSERT(batch.size() == 1 && batch[0].seq == 1);
    q.mark_applied(1);
    const auto c = q.push(mk);
    LACC_SCHED_ASSERT(c.outcome == Push::kAccepted && c.seq == 2);  // dense again
    q.stop();
    const auto d = q.push(mk);
    LACC_SCHED_ASSERT(d.outcome == Push::kStopped);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedIngestQueue, StopReleasesABlockedProducer) {
  Options o;
  o.name = "ingest-stop";
  const Result r = explore(o, [] {
    struct Shared {
      Queue q{/*capacity=*/1, /*shed=*/false};
      lacc::sched::atomic<int> accepted{0};
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread producer([s] {
      const auto first = s->q.push([](std::uint64_t seq) { return Item{0, seq}; });
      if (first.outcome == Push::kAccepted) {
        s->accepted.fetch_add(1, std::memory_order_relaxed);
        const auto second =
            s->q.push([](std::uint64_t seq) { return Item{0, seq}; });
        // The consumer never pops: the queue is full, so the second push
        // either blocks until stop() or sees it already — on every
        // schedule it must come back kStopped, never deadlock or shed.
        LACC_SCHED_ASSERT(second.outcome == Push::kStopped);
      } else {
        // stop() won the race to the first push.
        LACC_SCHED_ASSERT(first.outcome == Push::kStopped);
      }
    });
    s->q.stop();
    producer.join();
    // Already-accepted items still drain after stop.
    std::vector<Item> batch;
    if (s->accepted.load(std::memory_order_relaxed) == 1) {
      LACC_SCHED_ASSERT(s->q.pop_batch(batch, 2, [](const Item&) { return 0; }));
      LACC_SCHED_ASSERT(batch.size() == 1 && batch[0].seq == 1);
      s->q.mark_applied(1);
    }
    LACC_SCHED_ASSERT(!s->q.pop_batch(batch, 2, [](const Item&) { return 0; }));
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedIngestQueue, FlushClosesTheBatchAndTerminates) {
  Options o;
  o.name = "ingest-flush";
  o.random_executions = 400;
  const Result r = explore(o, [] {
    auto q = std::make_shared<Queue>(/*capacity=*/4, /*shed=*/false);
    lacc::sched::thread consumer([q] {
      std::vector<Item> batch;
      // Big max_batch: without a flush or stop the batch would wait for
      // the (choice-driven) deadline; flush() must force it closed.
      while (q->pop_batch(batch, 16, [](const Item&) { return 0; })) {
        if (!batch.empty()) q->mark_applied(batch.back().seq);
      }
    });
    (void)q->push([](std::uint64_t seq) { return Item{0, seq}; });
    (void)q->push([](std::uint64_t seq) { return Item{0, seq}; });
    q->flush();
    LACC_SCHED_ASSERT(q->applied_seq() >= 2);  // flush target reached
    q->stop();
    consumer.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

}  // namespace
