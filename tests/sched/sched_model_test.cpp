// Self-tests for the lacc::sched model checker itself: classic litmus
// shapes where the correct and the buggy variant differ by one memory
// order, plus deadlock detection, replay determinism, and the exploration
// knobs.  These pin down the checker's verdicts before the structure
// suites rely on them.
#include <gtest/gtest.h>

#include <memory>

#include "sched/model.hpp"
#include "sched/shim.hpp"

namespace {

using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;
using lacc::sched::replay;

Options opts(const char* name) {
  Options o;
  o.name = name;
  return o;
}

// --- message passing: the canonical release/acquire litmus ----------------

void mp_release_acquire() {
  auto data = std::make_shared<lacc::sched::atomic<int>>(0);
  auto flag = std::make_shared<lacc::sched::atomic<int>>(0);
  lacc::sched::thread w([data, flag] {
    data->store(42, std::memory_order_relaxed);
    flag->store(1, std::memory_order_release);
  });
  if (flag->load(std::memory_order_acquire) == 1)
    LACC_SCHED_ASSERT(data->load(std::memory_order_relaxed) == 42);
  w.join();
}

void mp_relaxed() {
  auto data = std::make_shared<lacc::sched::atomic<int>>(0);
  auto flag = std::make_shared<lacc::sched::atomic<int>>(0);
  lacc::sched::thread w([data, flag] {
    data->store(42, std::memory_order_relaxed);
    flag->store(1, std::memory_order_relaxed);  // missing release
  });
  if (flag->load(std::memory_order_acquire) == 1)
    LACC_SCHED_ASSERT(data->load(std::memory_order_relaxed) == 42);
  w.join();
}

TEST(SchedModel, MessagePassingWithReleaseAcquirePasses) {
  const Result r = explore(opts("mp-rel-acq"), mp_release_acquire);
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.executions, 1u);
}

TEST(SchedModel, MessagePassingWithoutReleaseIsCaught) {
  const Result r = explore(opts("mp-relaxed"), mp_relaxed);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("assertion"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.failing_choices.empty());
  EXPECT_NE(r.trace.find("FAIL"), std::string::npos) << r.trace;
}

TEST(SchedModel, RandomModeCatchesTheRelaxedBugToo) {
  Options o = opts("mp-relaxed-random");
  o.random_executions = 500;
  const Result r = explore(o, mp_relaxed);
  EXPECT_FALSE(r.ok);
}

TEST(SchedModel, ReplayReproducesTheExactFailure) {
  const Result r = explore(opts("mp-relaxed"), mp_relaxed);
  ASSERT_FALSE(r.ok);
  const Result again = replay(opts("mp-relaxed"), mp_relaxed, r.failing_choices);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.failure, r.failure);
  // The trace names the stale read: the acquire load saw the flag but the
  // data load returned the initial value.
  EXPECT_NE(again.trace.find("load(relaxed) = 0"), std::string::npos)
      << again.trace;
}

// --- lost update: non-atomic read-modify-write --------------------------

TEST(SchedModel, LostUpdateIsCaught) {
  const Result r = explore(opts("lost-update"), [] {
    auto x = std::make_shared<lacc::sched::atomic<int>>(0);
    auto bump = [x] {
      const int v = x->load(std::memory_order_relaxed);  // not an RMW
      x->store(v + 1, std::memory_order_relaxed);
    };
    lacc::sched::thread a(bump), b(bump);
    a.join();
    b.join();
    LACC_SCHED_ASSERT(x->load(std::memory_order_relaxed) == 2);
  });
  EXPECT_FALSE(r.ok);
}

TEST(SchedModel, FetchAddNeverLosesUpdates) {
  const Result r = explore(opts("fetch-add"), [] {
    auto x = std::make_shared<lacc::sched::atomic<int>>(0);
    auto bump = [x] { x->fetch_add(1, std::memory_order_relaxed); };
    lacc::sched::thread a(bump), b(bump);
    a.join();
    b.join();
    LACC_SCHED_ASSERT(x->load(std::memory_order_relaxed) == 2);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// --- deadlock detection -------------------------------------------------

TEST(SchedModel, AbBaDeadlockIsDetected) {
  const Result r = explore(opts("ab-ba"), [] {
    auto m1 = std::make_shared<lacc::sched::mutex>();
    auto m2 = std::make_shared<lacc::sched::mutex>();
    lacc::sched::thread a([m1, m2] {
      m1->lock();
      m2->lock();
      m2->unlock();
      m1->unlock();
    });
    lacc::sched::thread b([m1, m2] {
      m2->lock();
      m1->lock();
      m1->unlock();
      m2->unlock();
    });
    a.join();
    b.join();
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

TEST(SchedModel, ConsistentLockOrderPasses) {
  const Result r = explore(opts("ab-ab"), [] {
    auto m1 = std::make_shared<lacc::sched::mutex>();
    auto m2 = std::make_shared<lacc::sched::mutex>();
    auto body = [m1, m2] {
      m1->lock();
      m2->lock();
      m2->unlock();
      m1->unlock();
    };
    lacc::sched::thread a(body), b(body);
    a.join();
    b.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// --- condition variables -------------------------------------------------

TEST(SchedModel, CvHandshakeCompletesOnEverySchedule) {
  const Result r = explore(opts("cv-handshake"), [] {
    struct Shared {
      lacc::sched::mutex mu;
      lacc::sched::condition_variable cv;
      bool ready = false;
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread w([s] {
      {
        std::lock_guard<lacc::sched::mutex> lock(s->mu);
        s->ready = true;
      }
      s->cv.notify_one();
    });
    {
      std::unique_lock<lacc::sched::mutex> lock(s->mu);
      s->cv.wait(lock, [&] { return s->ready; });
      LACC_SCHED_ASSERT(s->ready);
    }
    w.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedModel, MissedWakeupWithoutPredicateIsCaught) {
  // Classic bug: notify before wait + no predicate => waiter sleeps
  // forever on the schedule where the signaler runs first.
  const Result r = explore(opts("missed-wakeup"), [] {
    struct Shared {
      lacc::sched::mutex mu;
      lacc::sched::condition_variable cv;
    };
    auto s = std::make_shared<Shared>();
    lacc::sched::thread w([s] { s->cv.notify_one(); });
    {
      std::unique_lock<lacc::sched::mutex> lock(s->mu);
      s->cv.wait(lock);  // no predicate, no timeout
    }
    w.join();
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

TEST(SchedModel, TimedWaitAloneTimesOutInsteadOfDeadlocking) {
  const Result r = explore(opts("timed-wait"), [] {
    struct Shared {
      lacc::sched::mutex mu;
      lacc::sched::condition_variable cv;
    };
    auto s = std::make_shared<Shared>();
    std::unique_lock<lacc::sched::mutex> lock(s->mu);
    const auto st = s->cv.wait_until(lock, /*ignored deadline=*/0);
    LACC_SCHED_ASSERT(st == std::cv_status::timeout);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

// --- exploration knobs ---------------------------------------------------

TEST(SchedModel, PreemptionBoundShrinksTheTree) {
  auto body = [] {
    auto x = std::make_shared<lacc::sched::atomic<int>>(0);
    auto bump = [x] { x->fetch_add(1, std::memory_order_relaxed); };
    lacc::sched::thread a(bump), b(bump);
    a.join();
    b.join();
  };
  Options unbounded = opts("pb-unbounded");
  Options bounded = opts("pb-zero");
  bounded.preemption_bound = 0;
  const Result ru = explore(unbounded, body);
  const Result rb = explore(bounded, body);
  EXPECT_TRUE(ru.ok);
  EXPECT_TRUE(rb.ok);
  EXPECT_LT(rb.executions, ru.executions);
}

TEST(SchedModel, MaxExecutionsCapsExhaustiveSearch) {
  Options o = opts("cap");
  o.max_executions = 3;
  const Result r = explore(o, mp_release_acquire);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.executions, 3u);
}

TEST(SchedModel, LivelockTripsTheStepBudget) {
  Options o = opts("livelock");
  o.max_steps = 500;
  const Result r = explore(o, [] {
    auto flag = std::make_shared<lacc::sched::atomic<int>>(0);
    // No sibling ever sets the flag: pure spin, every schedule livelocks.
    while (flag->load(std::memory_order_relaxed) == 0) lacc::sched::yield();
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("livelock"), std::string::npos) << r.failure;
}

TEST(SchedModel, ExceptionEscapingABodyFailsTheRun) {
  const Result r = explore(opts("throws"), [] {
    throw std::runtime_error("boom");
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("boom"), std::string::npos) << r.failure;
}

TEST(SchedModel, ShimsPassThroughOutsideExploration) {
  // Shimmed primitives degrade to plain single-threaded behavior when no
  // exploration is live (loc ids are negative).
  lacc::sched::atomic<int> x{7};
  EXPECT_EQ(x.load(std::memory_order_relaxed), 7);
  x.store(9, std::memory_order_release);
  EXPECT_EQ(x.fetch_add(1, std::memory_order_acq_rel), 9);
  int expected = 10;
  EXPECT_TRUE(x.compare_exchange_strong(expected, 11, std::memory_order_relaxed));
  EXPECT_EQ(x.load(std::memory_order_acquire), 11);
  lacc::sched::mutex m;
  m.lock();
  m.unlock();
  EXPECT_GE(lacc::sched::budget_scale(), 1u);
}

}  // namespace
