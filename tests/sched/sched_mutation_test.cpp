// Mutation regression tests for the model checker: test-only copies of the
// two publication idioms the real structures rely on, each with its
// release edge intact AND deliberately dropped.  The checker must pass the
// correct variant and CATCH both mutants — this is the regression that
// keeps the checker honest (a scheduler change that stops exploring stale
// reads breaks these tests, not silently the structure suites).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "sched/model.hpp"
#include "sched/shim.hpp"

namespace {

using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;

// --- mutant 1: histogram publish without release --------------------------
//
// Miniature of obs::BasicLatencyHistogram's ordered edge: record() bumps a
// bucket relaxed, then publishes count_.  The real code publishes with
// release (obs/latency.hpp record_ns); the mutant uses relaxed, so an
// acquire reader can observe count == 1 with the bucket increment invisible.
struct MiniHistogram {
  lacc::sched::atomic<std::uint64_t> bucket{0};
  lacc::sched::atomic<std::uint64_t> count{0};

  void record(std::memory_order publish_order) {
    bucket.fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, publish_order);
  }
  void reader_invariant() const {
    const std::uint64_t c = count.load(std::memory_order_acquire);
    const std::uint64_t b = bucket.load(std::memory_order_relaxed);
    LACC_SCHED_ASSERT(b >= c);
  }
};

Result run_histogram(const char* name, std::memory_order publish_order) {
  Options o;
  o.name = name;
  return explore(o, [publish_order] {
    auto h = std::make_shared<MiniHistogram>();
    lacc::sched::thread w([h, publish_order] { h->record(publish_order); });
    h->reader_invariant();
    w.join();
  });
}

TEST(SchedMutation, HistogramPublishWithReleasePasses) {
  const Result r = run_histogram("mut-hist-release", std::memory_order_release);
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedMutation, DroppedReleaseOnHistogramPublishIsCaught) {
  const Result r = run_histogram("mut-hist-relaxed", std::memory_order_relaxed);
  ASSERT_FALSE(r.ok) << "checker failed to catch the dropped release";
  EXPECT_NE(r.failure.find("assertion"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.failing_choices.empty());
}

// --- mutant 2: snapshot-cache key publish without release ------------------
//
// Miniature of the two-word variant of serve's pair cache: the answer is
// stored first, then the key is published.  With a release key store a
// reader that observes the new key also observes its answer; the relaxed
// mutant lets the reader pair the NEW key with the STALE answer — a wrong
// cache hit, exactly the corruption the single-word packing in
// serve/snapshot.hpp exists to prevent.
struct SplitCacheSlot {
  lacc::sched::atomic<std::uint64_t> key{0};
  lacc::sched::atomic<std::uint64_t> answer{0};

  void insert(std::uint64_t k, std::uint64_t a, std::memory_order key_order) {
    answer.store(a, std::memory_order_relaxed);
    key.store(k, key_order);
  }
};

Result run_cache(const char* name, std::memory_order key_order) {
  Options o;
  o.name = name;
  return explore(o, [key_order] {
    auto slot = std::make_shared<SplitCacheSlot>();
    slot->insert(3, 30, key_order);  // resident entry, pre-spawn
    lacc::sched::thread w([slot, key_order] { slot->insert(5, 50, key_order); });
    const std::uint64_t k = slot->key.load(std::memory_order_acquire);
    const std::uint64_t a = slot->answer.load(std::memory_order_relaxed);
    // A hit must return the answer inserted WITH that key.
    if (k == 3) LACC_SCHED_ASSERT(a == 30 || a == 50);  // answer may be ahead
    if (k == 5) LACC_SCHED_ASSERT(a == 50);             // never behind the key
    w.join();
  });
}

TEST(SchedMutation, CacheKeyPublishWithReleasePasses) {
  const Result r = run_cache("mut-cache-release", std::memory_order_release);
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedMutation, DroppedReleaseOnCacheKeyPublishIsCaught) {
  const Result r = run_cache("mut-cache-relaxed", std::memory_order_relaxed);
  ASSERT_FALSE(r.ok) << "checker failed to catch the dropped release";
  EXPECT_NE(r.failure.find("assertion"), std::string::npos) << r.failure;
  // The failing schedule replays deterministically (the trace artifact CI
  // uploads on failure is exactly this).
  const Result again = lacc::sched::replay(
      [] {
        Options o;
        o.name = "mut-cache-relaxed";
        return o;
      }(),
      [] {
        auto slot = std::make_shared<SplitCacheSlot>();
        slot->insert(3, 30, std::memory_order_relaxed);
        lacc::sched::thread w(
            [slot] { slot->insert(5, 50, std::memory_order_relaxed); });
        const std::uint64_t k = slot->key.load(std::memory_order_acquire);
        const std::uint64_t a = slot->answer.load(std::memory_order_relaxed);
        if (k == 3) LACC_SCHED_ASSERT(a == 30 || a == 50);
        if (k == 5) LACC_SCHED_ASSERT(a == 50);
        w.join();
      },
      r.failing_choices);
  EXPECT_FALSE(again.ok);
  // Same assertion text (the line number differs: the replay body is a
  // textual duplicate of the explored lambda).
  EXPECT_NE(again.failure.find("assertion: a == 50"), std::string::npos)
      << again.failure;
}

}  // namespace
