// Model-check suite for serve::BasicPairCache under the scheduler shims.
// The cache's safety claim — all-relaxed single-word slots can stale a
// cached answer but never corrupt one — is checked on every explored
// schedule of concurrent inserts and lookups.
#include <gtest/gtest.h>

#include <memory>

#include "sched/model.hpp"
#include "sched/shim.hpp"
#include "serve/snapshot.hpp"

namespace {

using Cache = lacc::serve::BasicPairCache<lacc::sched::SchedSyncPolicy>;
using lacc::VertexId;
using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;

TEST(SchedPairCache, HitsAreNeverWrongUnderConcurrentInserts) {
  Options o;
  o.name = "paircache-race";
  const Result r = explore(o, [] {
    auto c = std::make_shared<Cache>(/*bits=*/1, /*n=*/16);  // 2 slots: forced collisions
    LACC_SCHED_ASSERT(c->enabled());
    // Ground truth: (1,2) same, (3,7) not.  Writers race on the slots.
    lacc::sched::thread w1([c] { c->insert(1, 2, true); });
    lacc::sched::thread w2([c] { c->insert(3, 7, false); });
    if (const auto hit = c->lookup(1, 2)) LACC_SCHED_ASSERT(*hit == true);
    if (const auto hit = c->lookup(3, 7)) LACC_SCHED_ASSERT(*hit == false);
    w1.join();
    w2.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedPairCache, OverwriteCanMissButNeverCrossesAnswers) {
  Options o;
  o.name = "paircache-overwrite";
  const Result r = explore(o, [] {
    auto c = std::make_shared<Cache>(/*bits=*/1, /*n=*/16);
    c->insert(1, 2, true);  // resident entry, published pre-spawn
    lacc::sched::thread w([c] { c->insert(3, 7, false); });  // may evict it
    const auto a = c->lookup(1, 2);
    const auto b = c->lookup(3, 7);
    if (a) LACC_SCHED_ASSERT(*a == true);
    if (b) LACC_SCHED_ASSERT(*b == false);
    w.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedPairCache, HitMissCountersAccountForEveryLookup) {
  Options o;
  o.name = "paircache-counters";
  const Result r = explore(o, [] {
    auto c = std::make_shared<Cache>(/*bits=*/1, /*n=*/16);
    auto prober = [c] { (void)c->lookup(1, 2); };
    lacc::sched::thread a(prober), b(prober);
    (void)c->lookup(1, 2);
    a.join();
    b.join();
    // fetch_add-based counters: no lookup is ever dropped or double-counted.
    LACC_SCHED_ASSERT(c->hits() + c->misses() == 3);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedPairCache, DisabledCacheIsInertOnEverySchedule) {
  Options o;
  o.name = "paircache-disabled";
  const Result r = explore(o, [] {
    auto c = std::make_shared<Cache>(/*bits=*/0, /*n=*/16);
    LACC_SCHED_ASSERT(!c->enabled());
    lacc::sched::thread w([c] { c->insert(1, 2, true); });
    LACC_SCHED_ASSERT(!c->lookup(1, 2).has_value());
    w.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

}  // namespace
