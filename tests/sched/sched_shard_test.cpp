// Model-checked suites for the shard layer's lock-free structures:
//
//   * BasicWatermarkVector (the REAL production template, instantiated over
//     SchedSyncPolicy): the single release edge on the epoch word must make
//     every coverage answer trustworthy — covers() may under-report (the
//     caller falls back to the cv wait) but never over-report.
//   * The replica snapshot pointer swap, modeled as a test-local
//     publication struct (the production path hides the pointer behind a
//     mutex; the model distills the ordering the by-copy fan-out relies
//     on): labels are written before the snapshot pointer publishes.
//
// Plus the mutation regression the roadmap requires for new lock-free
// code: dropping the release edge on global-snapshot publish must be
// CAUGHT by the checker (ASSERT_FALSE(r.ok)), proving the suite would
// notice the real bug, not just pass vacuously.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "sched/model.hpp"
#include "sched/shim.hpp"
#include "shard/watermarks.hpp"

namespace {

using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;
using SchedWatermarks =
    lacc::shard::BasicWatermarkVector<lacc::sched::SchedSyncPolicy>;

// --- the real watermark vector --------------------------------------------

// One reconcile publication racing one ticketed reader: the release edge
// on the epoch word means a reader that acquires epoch 1 must observe the
// full covered vector published with it — and therefore coverage of any
// ticket that epoch covers.  (The converse deliberately does NOT hold:
// covers() may race slightly ahead of the epoch word, which is safe — see
// the comment on BasicWatermarkVector::covers.)
TEST(SchedShard, WatermarkCoverageImpliesPublishedEpoch) {
  Options o;
  o.name = "shard-watermark-coverage";
  const Result r = explore(o, [] {
    auto wm = std::make_shared<SchedWatermarks>(2);
    lacc::shard::ShardTicket ticket;
    ticket.marks.emplace_back(0, 3);
    ticket.marks.emplace_back(1, 1);
    lacc::sched::thread reconcile(
        [wm] { wm->publish(1, {3, 2}, 5); });
    if (wm->epoch() == 1) {
      // The acquire paired with publish()'s release: every covered entry
      // of epoch 1 is visible.
      LACC_SCHED_ASSERT(wm->covered(0) >= 3);
      LACC_SCHED_ASSERT(wm->covered(1) >= 2);
      LACC_SCHED_ASSERT(wm->boundary_covered() >= 5);
      LACC_SCHED_ASSERT(wm->covers(ticket));
    }
    reconcile.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// Monotone publications: a reader that sees epoch e sees at least e's
// coverage, across two successive reconcile rounds.
TEST(SchedShard, WatermarkEpochsAreMonotonicallyCovered) {
  Options o;
  o.name = "shard-watermark-monotone";
  const Result r = explore(o, [] {
    auto wm = std::make_shared<SchedWatermarks>(1);
    lacc::sched::thread reconcile([wm] {
      wm->publish(1, {2}, 1);
      wm->publish(2, {5}, 3);
    });
    const std::uint64_t e = wm->epoch();
    const std::uint64_t c = wm->covered(0);
    if (e == 1) LACC_SCHED_ASSERT(c >= 2);
    if (e == 2) LACC_SCHED_ASSERT(c >= 5);
    const std::uint64_t b = wm->boundary_covered();
    if (e == 1) LACC_SCHED_ASSERT(b >= 1);
    if (e == 2) LACC_SCHED_ASSERT(b >= 3);
    reconcile.join();
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// --- replica snapshot pointer swap (publication model) ---------------------
//
// Distillation of the replica fan-out: the reconcile writes the composed
// labels (here: one word), then swings the replica's snapshot pointer
// (here: an epoch-tagged slot).  The pointer store is the release edge; a
// reader that acquires the new pointer must see the labels it was built
// from.  Parameterized on the publish order so the mutation tests below
// prove the checker catches the dropped release.
struct ReplicaSlot {
  lacc::sched::atomic<std::uint64_t> labels{0};   ///< stand-in for the vector
  lacc::sched::atomic<std::uint64_t> current{0};  ///< published epoch "pointer"

  void publish(std::uint64_t epoch, std::uint64_t composed,
               std::memory_order publish_order) {
    labels.store(composed, std::memory_order_relaxed);
    current.store(epoch, publish_order);
  }
  void reader_invariant() const {
    const std::uint64_t e = current.load(std::memory_order_acquire);
    const std::uint64_t l = labels.load(std::memory_order_relaxed);
    // Epoch e's snapshot was composed from labels 10*e; a reader holding
    // the new pointer must never see the stale labels.
    if (e == 1) LACC_SCHED_ASSERT(l == 10);
  }
};

Result run_replica_swap(const char* name, std::memory_order publish_order) {
  Options o;
  o.name = name;
  return explore(o, [publish_order] {
    auto slot = std::make_shared<ReplicaSlot>();
    lacc::sched::thread reconcile(
        [slot, publish_order] { slot->publish(1, 10, publish_order); });
    slot->reader_invariant();
    reconcile.join();
  });
}

TEST(SchedShard, ReplicaSwapWithReleasePasses) {
  const Result r =
      run_replica_swap("shard-replica-release", std::memory_order_release);
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// --- mutation: dropped release on global-snapshot publish ------------------

TEST(SchedShard, DroppedReleaseOnGlobalPublishIsCaught) {
  const Result r =
      run_replica_swap("shard-replica-relaxed", std::memory_order_relaxed);
  ASSERT_FALSE(r.ok) << "checker failed to catch the dropped release";
  EXPECT_NE(r.failure.find("assertion"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.failing_choices.empty());

  // Replay pinpoints the interleaving: rerunning the failing choice
  // sequence reproduces the violation deterministically.
  Options ro;
  ro.name = "shard-replica-relaxed-replay";
  const Result again = lacc::sched::replay(
      ro,
      [] {
        auto slot = std::make_shared<ReplicaSlot>();
        lacc::sched::thread reconcile(
            [slot] { slot->publish(1, 10, std::memory_order_relaxed); });
        slot->reader_invariant();
        reconcile.join();
      },
      r.failing_choices);
  EXPECT_FALSE(again.ok);
}

// The watermark vector's own mutation: publish the epoch word relaxed and
// the coverage-implies-published-stores argument collapses.  Uses a
// test-local mirror because the production publish() hard-codes release
// (that hard-coding is the point — this proves it is load-bearing).
struct RelaxedWatermark {
  lacc::sched::atomic<std::uint64_t> covered{0};
  lacc::sched::atomic<std::uint64_t> epoch{0};

  void publish(std::memory_order epoch_order) {
    covered.store(7, std::memory_order_relaxed);
    epoch.store(1, epoch_order);
  }
};

Result run_watermark_mutant(const char* name, std::memory_order epoch_order) {
  Options o;
  o.name = name;
  return explore(o, [epoch_order] {
    auto wm = std::make_shared<RelaxedWatermark>();
    lacc::sched::thread reconcile(
        [wm, epoch_order] { wm->publish(epoch_order); });
    if (wm->epoch.load(std::memory_order_acquire) == 1)
      LACC_SCHED_ASSERT(wm->covered.load(std::memory_order_relaxed) == 7);
    reconcile.join();
  });
}

TEST(SchedShard, WatermarkReleaseIsLoadBearing) {
  const Result good =
      run_watermark_mutant("shard-wm-release", std::memory_order_release);
  EXPECT_TRUE(good.ok) << good.failure << "\n" << good.trace;
  const Result bad =
      run_watermark_mutant("shard-wm-relaxed", std::memory_order_relaxed);
  ASSERT_FALSE(bad.ok) << "checker failed to catch the dropped release";
  EXPECT_FALSE(bad.failing_choices.empty());
}

}  // namespace
