// Model-check suite for the Afforest/GAP lock-free union-find primitives
// (core/afforest.hpp).  This checks the claim lacc_omp's correctness rests
// on: concurrent link() calls race on tree shapes, but after compress +
// min-relabel the labels are the sequential canonical labels on EVERY
// explored schedule — the races are benign and unobservable.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/afforest.hpp"
#include "sched/model.hpp"
#include "sched/shim.hpp"

namespace {

namespace afforest = lacc::core::afforest;
using lacc::VertexId;
using lacc::sched::Options;
using lacc::sched::Result;
using lacc::sched::explore;

using CompVec = std::vector<lacc::sched::atomic<VertexId>>;

CompVec make_comp(std::size_t n) {
  CompVec comp(n);
  for (std::size_t v = 0; v < n; ++v)
    comp[v].store(static_cast<VertexId>(v), std::memory_order_relaxed);
  return comp;
}

// Flatten + min-relabel, then compare against the expected canonical labels.
void finish_and_check(CompVec& comp, const std::vector<VertexId>& expected) {
  const auto ni = static_cast<std::int64_t>(comp.size());
  afforest::compress_seq(comp, ni);
  CompVec low(comp.size());
  afforest::relabel_min_seq(comp, low, ni);
  for (std::size_t v = 0; v < comp.size(); ++v)
    LACC_SCHED_ASSERT(comp[v].load(std::memory_order_relaxed) == expected[v]);
}

TEST(SchedUnionFind, RacingLinksOnAPathAreUnobservableAfterRelabel) {
  Options o;
  o.name = "uf-path";
  o.max_executions = 60000;
  const Result r = explore(o, [] {
    auto comp = std::make_shared<CompVec>(make_comp(4));
    // Path 0-1-2-3 linked by two racing threads: every interleaving (and
    // every stale relaxed read) must still merge all four vertices.
    lacc::sched::thread t([comp] {
      afforest::link(*comp, 0, 1);
      afforest::link(*comp, 2, 3);
    });
    afforest::link(*comp, 1, 2);
    t.join();
    finish_and_check(*comp, {0, 0, 0, 0});
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedUnionFind, DisjointComponentsNeverBleedTogether) {
  Options o;
  o.name = "uf-disjoint";
  const Result r = explore(o, [] {
    auto comp = std::make_shared<CompVec>(make_comp(4));
    lacc::sched::thread t([comp] { afforest::link(*comp, 0, 1); });
    afforest::link(*comp, 2, 3);
    t.join();
    finish_and_check(*comp, {0, 0, 2, 2});
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedUnionFind, DuplicateEdgeRacesAreIdempotent) {
  Options o;
  o.name = "uf-dup-edge";
  const Result r = explore(o, [] {
    auto comp = std::make_shared<CompVec>(make_comp(3));
    lacc::sched::thread t([comp] { afforest::link(*comp, 0, 1); });
    afforest::link(*comp, 0, 1);  // same edge from both threads
    t.join();
    finish_and_check(*comp, {0, 0, 2});
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedUnionFind, AtomicMinConvergesToTheMinimum) {
  Options o;
  o.name = "uf-atomic-min";
  const Result r = explore(o, [] {
    auto slot = std::make_shared<lacc::sched::atomic<VertexId>>(VertexId{7});
    lacc::sched::thread t([slot] { afforest::atomic_min(*slot, 3); });
    afforest::atomic_min(*slot, 5);
    t.join();
    LACC_SCHED_ASSERT(slot->load(std::memory_order_relaxed) == 3);
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(SchedUnionFind, LargerRaceMatchesSequentialGroundTruth) {
  Options o;
  o.name = "uf-random";
  o.random_executions = 500;  // wider graph: seeded random sample
  const Result r = explore(o, [] {
    auto comp = std::make_shared<CompVec>(make_comp(5));
    // {0,1,2} and {3,4}; the shared edge list is split across the threads.
    lacc::sched::thread t([comp] {
      afforest::link(*comp, 1, 2);
      afforest::link(*comp, 3, 4);
    });
    afforest::link(*comp, 0, 1);
    afforest::link(*comp, 4, 3);
    t.join();
    finish_and_check(*comp, {0, 0, 0, 3, 3});
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

}  // namespace
