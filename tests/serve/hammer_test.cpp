// Concurrency hammer tests for the serving layer.  These are the tests the
// TSan CI job exists for: many reader threads race snapshot publication,
// cache overwrites, and server shutdown, and every observed value is
// checked against an invariant that racy code would break.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"
#include "sim/machine.hpp"

namespace lacc::serve {
namespace {

constexpr int kReaderThreads = 4;

// Labels for epoch e over n vertices: vertices 0..min(e, n-1) merged into
// component 0, the rest singletons.  Canonical by construction, and epoch
// is recoverable from the labels so readers can detect torn snapshots.
std::vector<VertexId> epoch_labels(std::uint64_t epoch, VertexId n) {
  std::vector<VertexId> labels(static_cast<std::size_t>(n));
  std::iota(labels.begin(), labels.end(), VertexId{0});
  for (VertexId v = 1; v < n && v <= epoch; ++v) labels[v] = 0;
  return labels;
}

TEST(ServeHammer, ReadersRaceSnapshotPublication) {
  constexpr std::uint64_t kEpochs = 200;
  constexpr VertexId kN = 256;
  SnapshotStore store(/*retain=*/4);
  store.publish(std::make_shared<const Snapshot>(0, epoch_labels(0, kN),
                                                 /*top_k=*/2,
                                                 /*cache_bits=*/6));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&store, &stop, &violations] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = store.current();
        // Monotonic epochs, and the labels must be exactly the vector the
        // publisher built for that epoch — a torn or stale mix fails here.
        if (snap->epoch() < last_epoch) violations.fetch_add(1);
        last_epoch = snap->epoch();
        if (snap->labels() != epoch_labels(snap->epoch(), kN))
          violations.fetch_add(1);
        // Exercise the racy-but-safe pair cache.
        const bool same = snap->same_component(0, 1);
        if (same != (snap->epoch() >= 1)) violations.fetch_add(1);
        // Pinned lookups race retirement; whatever comes back must match
        // its own epoch.
        std::shared_ptr<const Snapshot> pin;
        if (store.at(snap->epoch(), pin) == SnapshotStore::Lookup::kOk &&
            pin->labels() != epoch_labels(pin->epoch(), kN))
          violations.fetch_add(1);
      }
    });
  }

  for (std::uint64_t e = 1; e <= kEpochs; ++e) {
    store.publish(
        std::make_shared<const Snapshot>(e, epoch_labels(e, kN), 2, 6));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(store.current_epoch(), kEpochs);
}

TEST(ServeHammer, PairCacheRacyOverwritesNeverLie) {
  // Ground truth: same iff u + v is even.  Writers insert truthful entries
  // for random colliding pairs while readers look up; any *hit* must match
  // the truth (misses are always allowed).
  const PairCache cache(4, 10000);  // 16 slots: constant collisions
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lies{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&cache, &stop, &lies, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int i = 0; i < 20000 && !stop.load(std::memory_order_relaxed);
           ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const VertexId u = x % 100;
        const VertexId v = u + 1 + (x >> 32) % 100;
        if (i % 2 == 0) {
          cache.insert(u, v, (u + v) % 2 == 0);
        } else if (const auto got = cache.lookup(u, v)) {
          if (*got != ((u + v) % 2 == 0)) lies.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(lies.load(), 0u);
}

TEST(ServeHammer, ConcurrentClientsAgainstLiveServer) {
  ServeOptions options;
  options.batch_max_edges = 32;
  options.batch_window_ms = 0.25;
  options.retain_epochs = 4;
  options.pair_cache_bits = 8;
  options.record_applied = true;
  Server server(96, 1, sim::MachineModel{}, options);

  const graph::EdgeList stream = graph::erdos_renyi(96, 300, /*seed=*/21);
  WorkloadOptions wl;
  wl.readers = kReaderThreads;
  wl.writers = 3;
  wl.session_every = 8;
  wl.pinned_every = 16;
  const WorkloadReport report = run_mixed_workload(server, stream, wl);

  EXPECT_EQ(report.session_violations, 0u);
  EXPECT_EQ(report.read_errors, 0u);
  EXPECT_EQ(report.writes_accepted, stream.edges.size());

  // Readers racing stop(): shutdown must be clean while reads continue.
  std::atomic<bool> stop_flag{false};
  std::thread late_reader([&server, &stop_flag] {
    while (!stop_flag.load(std::memory_order_acquire)) {
      const ReadResult r = server.component_of(1);
      ASSERT_EQ(r.status, ServeStatus::kOk);
    }
  });
  server.stop();
  stop_flag.store(true, std::memory_order_release);
  late_reader.join();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.writes_accepted, stream.edges.size());
}

}  // namespace
}  // namespace lacc::serve
