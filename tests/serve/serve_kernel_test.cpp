// Analytics endpoints on serve::Server: gating, correctness against the
// serial oracles on the accumulated graph, pinned-epoch queries, error
// statuses, and the kernel counters in ServeStats.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "kernel/reference.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace lacc::serve {
namespace {

constexpr VertexId kN = 64;

ServeOptions kernel_options() {
  ServeOptions o;
  o.batch_max_edges = 32;
  o.enable_kernel_queries = true;
  return o;
}

graph::EdgeList test_graph() {
  return graph::erdos_renyi(kN, 160, /*seed=*/23);
}

void load(Server& server, const graph::EdgeList& el) {
  for (const graph::Edge& e : el.edges)
    ASSERT_EQ(server.insert_edge(e.u, e.v).status, ServeStatus::kOk);
  server.flush();
}

TEST(ServeKernel, DisabledByDefaultThrows) {
  Server server(kN, 4, sim::MachineModel::edison());
  EXPECT_THROW(server.bfs_dist(0), Error);
  EXPECT_THROW(server.pagerank_topk(4), Error);
  EXPECT_THROW(server.triangle_count(), Error);
}

TEST(ServeKernel, BfsMatchesReferenceOnAccumulatedGraph) {
  const auto el = test_graph();
  Server server(kN, 4, sim::MachineModel::edison(), kernel_options());
  load(server, el);
  const BfsQueryResult r = server.bfs_dist(0);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_GT(r.epoch, 0u);
  EXPECT_EQ(r.result.dist, kernel::reference_bfs_distances(el, 0));
}

TEST(ServeKernel, PageRankTopKMatchesReference) {
  const auto el = test_graph();
  Server server(kN, 4, sim::MachineModel::edison(), kernel_options());
  load(server, el);
  const PageRankQueryResult r = server.pagerank_topk(5);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.top.size(), 5u);
  const kernel::KernelOptions defaults;
  const auto truth = kernel::top_k_ranks(
      kernel::reference_pagerank(el, defaults.damping, defaults.tolerance,
                                 defaults.max_iterations),
      5);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(r.top[i].v, truth[i].v) << "i=" << i;
    EXPECT_NEAR(r.top[i].rank, truth[i].rank, 1e-8);
  }
}

TEST(ServeKernel, TriangleCountMatchesReference) {
  const auto el = test_graph();
  Server server(kN, 4, sim::MachineModel::edison(), kernel_options());
  load(server, el);
  const TriangleQueryResult r = server.triangle_count();
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_EQ(r.triangles, kernel::reference_triangle_count(el));
}

TEST(ServeKernel, EpochZeroServesEmptyGraph) {
  Server server(kN, 1, sim::MachineModel::edison(), kernel_options());
  const TriangleQueryResult t = server.triangle_count();
  ASSERT_EQ(t.status, ServeStatus::kOk);
  EXPECT_EQ(t.epoch, 0u);
  EXPECT_EQ(t.triangles, 0u);
  const BfsQueryResult b = server.bfs_dist(3);
  ASSERT_EQ(b.status, ServeStatus::kOk);
  EXPECT_EQ(b.result.reached, 1u);  // just the source
}

TEST(ServeKernel, PinnedEpochQueriesSeeOldGraph) {
  Server server(kN, 1, sim::MachineModel::edison(), kernel_options());
  // Epoch 0: empty.  Then a triangle arrives.
  load(server, [] {
    graph::EdgeList el(kN);
    el.add(0, 1);
    el.add(1, 2);
    el.add(2, 0);
    return el;
  }());
  const std::uint64_t now = server.triangle_count().epoch;
  ASSERT_GT(now, 0u);
  const TriangleQueryResult then = server.triangle_count_at(0);
  ASSERT_EQ(then.status, ServeStatus::kOk);
  EXPECT_EQ(then.epoch, 0u);
  EXPECT_EQ(then.triangles, 0u);
  EXPECT_EQ(server.triangle_count_at(now).triangles, 1u);
  EXPECT_EQ(server.bfs_dist_at(0, 0).result.reached, 1u);
  EXPECT_EQ(server.bfs_dist_at(now, 0).result.reached, 3u);
}

TEST(ServeKernel, ErrorStatuses) {
  Server server(kN, 1, sim::MachineModel::edison(), kernel_options());
  EXPECT_EQ(server.bfs_dist(kN).status, ServeStatus::kUnknownVertex);
  EXPECT_EQ(server.bfs_dist_at(99, 0).status, ServeStatus::kFutureEpoch);
  EXPECT_EQ(server.triangle_count_at(99).status, ServeStatus::kFutureEpoch);
  EXPECT_EQ(server.pagerank_topk_at(99, 3).status,
            ServeStatus::kFutureEpoch);
}

TEST(ServeKernel, StatsCountQueriesAndModeledTime) {
  const auto el = test_graph();
  Server server(kN, 4, sim::MachineModel::edison(), kernel_options());
  load(server, el);
  const auto before = server.stats();
  (void)server.bfs_dist(0);
  (void)server.pagerank_topk(3);
  (void)server.triangle_count();
  (void)server.bfs_dist(kN);  // error path
  const auto after = server.stats();
  EXPECT_EQ(after.kernel_queries, before.kernel_queries + 4);
  EXPECT_EQ(after.kernel_query_errors, before.kernel_query_errors + 1);
  EXPECT_GT(after.kernel_modeled_seconds, before.kernel_modeled_seconds);
}

}  // namespace
}  // namespace lacc::serve
