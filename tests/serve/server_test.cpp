// Functional tests for lacc::serve::Server: admission control, session
// (read-your-writes) semantics, pinned-epoch reads, error paths, and the
// bit-identical consistency contract against the from-scratch algorithm.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/lacc_dist.hpp"
#include "core/options.hpp"
#include "graph/generators.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"
#include "sim/machine.hpp"

namespace lacc::serve {
namespace {

ServeOptions fast_options() {
  ServeOptions o;
  o.batch_max_edges = 64;
  o.batch_window_ms = 0.5;
  o.record_applied = true;
  return o;
}

/// Canonical labels of the accumulated graph, computed from scratch.
std::vector<VertexId> reference_labels(const graph::EdgeList& el, int nranks) {
  return core::normalize_labels(
      core::lacc_dist(el, nranks, sim::MachineModel{}).cc.parent);
}

TEST(Server, ServesEpochZeroImmediately) {
  Server server(16, 1, sim::MachineModel{});
  const ReadResult r = server.component_of(5);
  EXPECT_EQ(r.status, ServeStatus::kOk);
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(r.label, 5u);
  const ReadResult pair = server.same_component(3, 4);
  EXPECT_EQ(pair.status, ServeStatus::kOk);
  EXPECT_FALSE(pair.same);
  EXPECT_EQ(server.snapshot()->num_components(), 16u);
}

TEST(Server, ReadYourWritesObservesOwnEdge) {
  Server server(32, 1, sim::MachineModel{}, fast_options());
  const WriteResult w = server.insert_edge(3, 17);
  ASSERT_EQ(w.status, ServeStatus::kOk);
  ASSERT_GT(w.ticket, 0u);
  // Without the ticket this read could see epoch 0; with it, it must wait
  // for the covering epoch and observe the edge.
  const ReadResult r = server.same_component(3, 17, w.ticket);
  EXPECT_EQ(r.status, ServeStatus::kOk);
  EXPECT_TRUE(r.same);
  EXPECT_GE(r.epoch, 1u);
}

TEST(Server, FinalLabelsMatchFromScratchRecompute) {
  const graph::EdgeList stream = graph::erdos_renyi(64, 120, /*seed=*/7);
  for (const int nranks : {1, 4}) {
    Server server(64, nranks, sim::MachineModel{}, fast_options());
    for (const graph::Edge& e : stream.edges) {
      ASSERT_EQ(server.insert_edge(e.u, e.v).status, ServeStatus::kOk);
    }
    server.flush();
    graph::EdgeList accumulated(64);
    server.stop();
    for (const graph::EdgeList& batch : server.applied_batches())
      for (const graph::Edge& e : batch.edges) accumulated.add(e.u, e.v);
    EXPECT_EQ(server.snapshot()->labels(),
              reference_labels(accumulated, nranks))
        << "nranks=" << nranks;
  }
}

TEST(Server, EveryRetainedEpochIsAConsistentPrefix) {
  ServeOptions options = fast_options();
  options.batch_max_edges = 4;  // many small epochs
  options.retain_epochs = 64;
  Server server(24, 1, sim::MachineModel{}, options);
  const graph::EdgeList stream = graph::erdos_renyi(24, 40, /*seed=*/3);
  for (const graph::Edge& e : stream.edges) server.insert_edge(e.u, e.v);
  server.flush();
  server.stop();

  const auto& batches = server.applied_batches();
  ASSERT_GT(batches.size(), 1u);
  graph::EdgeList prefix(24);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    for (const graph::Edge& e : batches[i].edges) prefix.add(e.u, e.v);
    std::shared_ptr<const Snapshot> snap;
    ASSERT_EQ(server.snapshot_at(i + 1, snap), SnapshotStore::Lookup::kOk);
    EXPECT_EQ(snap->labels(), reference_labels(prefix, 1)) << "epoch " << i + 1;
  }
}

TEST(Server, ShedAdmissionRejectsWhenQueueIsFull) {
  ServeOptions options;
  options.admission = Admission::kShed;
  options.queue_capacity = 4;
  options.batch_max_edges = 1 << 20;   // size trigger never fires
  options.batch_window_ms = 5000;      // deadline far away: queue backs up
  Server server(64, 1, sim::MachineModel{}, options);

  int accepted = 0, shed = 0;
  for (VertexId i = 0; i < 10; ++i) {
    const WriteResult w = server.insert_edge(i, i + 1);
    (w.status == ServeStatus::kOk ? accepted : shed)++;
    if (w.status != ServeStatus::kOk) {
      EXPECT_EQ(w.status, ServeStatus::kShed);
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(shed, 6);
  server.flush();  // forces the batch closed despite the long window
  EXPECT_EQ(server.stats().writes_shed, 6u);
  EXPECT_EQ(server.stats().writes_accepted, 4u);
  EXPECT_TRUE(server.same_component(0, 4).same);
}

TEST(Server, BlockAdmissionAcceptsEverythingUnderPressure) {
  ServeOptions options;
  options.admission = Admission::kBlock;
  options.queue_capacity = 2;
  options.batch_max_edges = 2;
  options.batch_window_ms = 0.1;
  Server server(128, 1, sim::MachineModel{}, options);
  for (VertexId i = 0; i + 1 < 128; ++i) {
    ASSERT_EQ(server.insert_edge(i, i + 1).status, ServeStatus::kOk);
  }
  server.flush();
  EXPECT_EQ(server.stats().writes_shed, 0u);
  EXPECT_EQ(server.snapshot()->num_components(), 1u);
}

TEST(Server, ErrorPathsReportCleanStatuses) {
  ServeOptions options = fast_options();
  options.retain_epochs = 1;
  options.batch_max_edges = 1;
  Server server(8, 1, sim::MachineModel{}, options);

  EXPECT_EQ(server.insert_edge(0, 99).status, ServeStatus::kUnknownVertex);
  EXPECT_EQ(server.component_of(8).status, ServeStatus::kUnknownVertex);
  EXPECT_EQ(server.same_component(0, 8).status, ServeStatus::kUnknownVertex);
  EXPECT_EQ(server.component_of(0, /*ticket=*/42).status,
            ServeStatus::kInvalidTicket);

  // Advance two epochs so epoch 0 retires (retain=1 keeps only latest).
  server.insert_edge(0, 1);
  server.flush();
  server.insert_edge(2, 3);
  server.flush();
  EXPECT_EQ(server.component_at(0, 1).status, ServeStatus::kRetiredEpoch);
  EXPECT_EQ(server.component_at(99, 1).status, ServeStatus::kFutureEpoch);
  const ReadResult now = server.component_at(server.snapshot()->epoch(), 1);
  EXPECT_EQ(now.status, ServeStatus::kOk);
  EXPECT_EQ(now.label, 0u);

  server.stop();
  EXPECT_EQ(server.insert_edge(0, 1).status, ServeStatus::kStopped);
  EXPECT_STREQ(to_string(ServeStatus::kShed), "shed");
  EXPECT_STREQ(to_string(ServeStatus::kRetiredEpoch), "retired-epoch");
}

TEST(Server, StatsAndRequestTraceCoverTheRun) {
  ServeOptions options = fast_options();
  options.record_requests = true;
  Server server(16, 1, sim::MachineModel{}, options);
  server.insert_edge(1, 2);
  const WriteResult w = server.insert_edge(2, 3);
  server.same_component(1, 3, w.ticket);
  server.component_of(5);
  server.flush();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.writes_accepted, 2u);
  EXPECT_GE(stats.reads, 2u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.epochs_per_sec, 0.0);
  EXPECT_GE(stats.read_p99, stats.read_p50);
  EXPECT_GT(stats.commit_p50, 0.0);

  server.stop();
  const auto spans = server.request_log().spans();
  ASSERT_FALSE(spans.empty());
  std::ostringstream trace;
  write_request_trace(trace, spans, "server_test");
  EXPECT_NE(trace.str().find("\"lacc-trace-v1\""), std::string::npos);
  EXPECT_NE(trace.str().find("engine.commit"), std::string::npos);
  EXPECT_NE(trace.str().find("read.same_component"), std::string::npos);

  EXPECT_FALSE(server.engine_history().empty());
  EXPECT_GT(server.engine_modeled_seconds(), 0.0);
}

TEST(Server, RestartRecoversPublishedStateFromDataDir) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "lacc-serve-restart";
  fs::remove_all(dir);
  ServeOptions options = fast_options();
  options.stream.durable.dir = dir.string();

  const graph::EdgeList stream = graph::erdos_renyi(40, 90, /*seed=*/5);
  std::vector<VertexId> golden;
  std::uint64_t published = 0;
  {
    Server server(40, 4, sim::MachineModel{}, options);
    EXPECT_TRUE(server.durable());
    EXPECT_FALSE(server.recovered());
    for (const graph::Edge& e : stream.edges) {
      ASSERT_EQ(server.insert_edge(e.u, e.v).status, ServeStatus::kOk);
    }
    server.flush();
    server.stop();
    golden = server.snapshot()->labels();
    published = server.snapshot()->epoch();
    ASSERT_GT(published, 0u);
    EXPECT_GT(server.durability_stats().io.wal_records, 0u);
  }

  // A new process on the same directory serves the recovered epoch
  // immediately and keeps accepting writes.
  Server server(40, 4, sim::MachineModel{}, options);
  EXPECT_TRUE(server.recovered());
  EXPECT_EQ(server.recovered_epoch(), published);
  EXPECT_EQ(server.snapshot()->epoch(), published);
  EXPECT_EQ(server.snapshot()->labels(), golden);
  EXPECT_EQ(server.component_of(7).status, ServeStatus::kOk);

  ASSERT_EQ(server.insert_edge(0, 39).status, ServeStatus::kOk);
  server.flush();
  EXPECT_TRUE(server.same_component(0, 39).same);
  server.stop();
  const auto ds = server.durability_stats();
  EXPECT_TRUE(ds.recovered);
  EXPECT_EQ(ds.recovered_epoch, published);
}

TEST(Server, MixedWorkloadKeepsSessionsConsistent) {
  ServeOptions options = fast_options();
  options.batch_max_edges = 16;
  Server server(48, 1, sim::MachineModel{}, options);
  const graph::EdgeList stream = graph::erdos_renyi(48, 100, /*seed=*/11);
  WorkloadOptions wl;
  wl.readers = 2;
  wl.writers = 2;
  wl.session_every = 4;
  const WorkloadReport report = run_mixed_workload(server, stream, wl);

  EXPECT_EQ(report.session_violations, 0u);
  EXPECT_EQ(report.read_errors, 0u);
  EXPECT_EQ(report.writes_accepted, stream.edges.size());
  EXPECT_GT(report.session_reads, 0u);

  server.stop();
  graph::EdgeList accumulated(48);
  for (const graph::EdgeList& batch : server.applied_batches())
    for (const graph::Edge& e : batch.edges) accumulated.add(e.u, e.v);
  EXPECT_EQ(server.snapshot()->labels(), reference_labels(accumulated, 1));
}

}  // namespace
}  // namespace lacc::serve
