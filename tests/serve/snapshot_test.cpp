// Unit tests for the serve snapshot layer: pair cache, immutable epoch
// snapshots, and the epoch-indexed snapshot store.
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "support/error.hpp"

namespace lacc::serve {
namespace {

std::vector<VertexId> identity_labels(VertexId n) {
  std::vector<VertexId> labels(static_cast<std::size_t>(n));
  std::iota(labels.begin(), labels.end(), VertexId{0});
  return labels;
}

TEST(PairCache, DisabledConfigurationsAlwaysMiss) {
  const PairCache zero_bits(0, 100);
  EXPECT_FALSE(zero_bits.enabled());
  EXPECT_EQ(zero_bits.lookup(1, 2), std::nullopt);
  zero_bits.insert(1, 2, true);  // no-op, not a crash
  EXPECT_EQ(zero_bits.lookup(1, 2), std::nullopt);

  // Vertex ids must fit 31 bits for the packed-word scheme.
  const PairCache huge_graph(10, VertexId{1} << 31);
  EXPECT_FALSE(huge_graph.enabled());

  const PairCache too_many_bits(29, 100);
  EXPECT_FALSE(too_many_bits.enabled());
}

TEST(PairCache, HitsAfterInsertAndCountsStats) {
  const PairCache cache(8, 1000);
  ASSERT_TRUE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 256u);

  EXPECT_EQ(cache.lookup(3, 7), std::nullopt);
  cache.insert(3, 7, true);
  cache.insert(4, 9, false);
  EXPECT_EQ(cache.lookup(3, 7), std::optional<bool>(true));
  EXPECT_EQ(cache.lookup(4, 9), std::optional<bool>(false));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PairCache, CollidingPairsNeverLie) {
  // 2 bits = 4 slots: plenty of collisions among 100 pairs.  A colliding
  // lookup must miss (full-key validation), never return the other pair's
  // answer.
  const PairCache cache(2, 1000);
  for (VertexId u = 0; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v)
      cache.insert(u, v, (u + v) % 2 == 0);
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) {
      const auto got = cache.lookup(u, v);
      if (got.has_value()) {
        EXPECT_EQ(*got, (u + v) % 2 == 0);
      }
    }
  }
}

TEST(Snapshot, DerivesComponentViewsFromCanonicalLabels) {
  // Components {0,1,2}, {3,4}, {5}.
  const std::vector<VertexId> labels = {0, 0, 0, 3, 3, 5};
  const Snapshot snap(7, labels, /*top_k=*/2, /*cache_bits=*/4);

  EXPECT_EQ(snap.epoch(), 7u);
  EXPECT_EQ(snap.num_vertices(), 6u);
  EXPECT_EQ(snap.num_components(), 3u);
  EXPECT_EQ(snap.label_of(4), 3u);

  ASSERT_EQ(snap.top_components().size(), 2u);
  EXPECT_EQ(snap.top_components()[0], (std::pair<VertexId, std::uint64_t>{0, 3}));
  EXPECT_EQ(snap.top_components()[1], (std::pair<VertexId, std::uint64_t>{3, 2}));

  EXPECT_TRUE(snap.same_component(0, 2));
  EXPECT_TRUE(snap.same_component(4, 3));
  EXPECT_FALSE(snap.same_component(2, 5));
  EXPECT_TRUE(snap.same_component(5, 5));
  // Second identical query hits the cache and agrees.
  EXPECT_TRUE(snap.same_component(2, 0));
  EXPECT_GT(snap.cache().hits(), 0u);
}

TEST(Snapshot, RejectsNonCanonicalLabels) {
  // label 5 for vertex 1 violates label[v] <= v.
  EXPECT_THROW(Snapshot(1, {0, 5, 0, 0, 0, 5}, 2, 0), Error);
  // label chain 2 -> 1 -> 0 violates label[label[v]] == label[v].
  EXPECT_THROW(Snapshot(1, {0, 0, 1}, 2, 0), Error);
}

TEST(SnapshotStore, PublishesConsecutiveEpochsAndRetires) {
  SnapshotStore store(/*retain=*/2);
  store.publish(std::make_shared<const Snapshot>(0, identity_labels(4), 1, 0));
  store.publish(std::make_shared<const Snapshot>(
      1, std::vector<VertexId>{0, 0, 2, 3}, 1, 0));
  store.publish(std::make_shared<const Snapshot>(
      2, std::vector<VertexId>{0, 0, 0, 3}, 1, 0));

  EXPECT_EQ(store.current_epoch(), 2u);
  EXPECT_EQ(store.current()->num_components(), 2u);
  EXPECT_EQ(store.oldest_retained(), 1u);

  std::shared_ptr<const Snapshot> pin;
  EXPECT_EQ(store.at(0, pin), SnapshotStore::Lookup::kRetired);
  EXPECT_EQ(pin, nullptr);
  EXPECT_EQ(store.at(3, pin), SnapshotStore::Lookup::kFuture);
  ASSERT_EQ(store.at(1, pin), SnapshotStore::Lookup::kOk);
  EXPECT_EQ(pin->epoch(), 1u);
  EXPECT_EQ(pin->num_components(), 3u);
}

TEST(SnapshotStore, RejectsEpochGaps) {
  SnapshotStore store(4);
  store.publish(std::make_shared<const Snapshot>(0, identity_labels(2), 1, 0));
  EXPECT_THROW(store.publish(std::make_shared<const Snapshot>(
                   2, identity_labels(2), 1, 0)),
               Error);
}

}  // namespace
}  // namespace lacc::serve
