// Unit tests for the shard layer's building blocks: BoundaryStore
// accounting/compaction and the quotient reconcile's label mapping.
#include "shard/boundary.hpp"

#include <gtest/gtest.h>

#include "shard/quotient.hpp"
#include "sim/machine.hpp"

namespace lacc::shard {
namespace {

/// A 4-shard partition and, per shard, two distinct vertices it owns.
struct CrossShardFixture {
  ShardPartition partition{4};
  std::vector<VertexId> rep, rep2;
  CrossShardFixture() : rep(4, kNoVertex), rep2(4, kNoVertex) {
    for (VertexId v = 0; v < 1000; ++v) {
      const auto s = static_cast<std::size_t>(partition.owner(v));
      if (rep[s] == kNoVertex)
        rep[s] = v;
      else if (rep2[s] == kNoVertex)
        rep2[s] = v;
    }
  }
};

TEST(BoundaryStore, CountsBothSidesAndAssignsSeqs) {
  CrossShardFixture fx;
  BoundaryStore store(fx.partition, /*record_raw=*/true);
  std::vector<graph::Edge> batch;
  batch.push_back({fx.rep[0], fx.rep[1]});
  batch.push_back({fx.rep[2], fx.rep[3]});
  store.add(batch);
  EXPECT_EQ(store.total_raw(), 2u);
  EXPECT_EQ(store.pending_raw(), 2u);
  const auto per_shard = store.per_shard_raw();
  for (int s = 0; s < 4; ++s)
    EXPECT_EQ(per_shard[static_cast<std::size_t>(s)], 1u) << "shard " << s;
  ASSERT_EQ(store.raw_log().size(), 2u);
  EXPECT_EQ(store.raw_log()[0], batch[0]);
}

TEST(BoundaryStore, DrainDedupesAndRemembersCompactedState) {
  CrossShardFixture fx;
  BoundaryStore store(fx.partition, /*record_raw=*/false);
  // Two raw edges with the same label pair plus one distinct pair.
  store.add({{fx.rep[0], fx.rep[1]},
             {fx.rep[1], fx.rep[0]},
             {fx.rep[2], fx.rep[3]}});
  const auto identity = [](VertexId v) { return v; };
  BoundaryStore::Drain d = store.drain_and_compact(identity);
  EXPECT_EQ(d.raw_drained, 3u);
  EXPECT_EQ(d.covered_seq, 3u);
  ASSERT_EQ(d.pairs.size(), 2u);
  EXPECT_EQ(d.words_moved, 4u);
  EXPECT_EQ(store.pending_raw(), 0u);

  // Nothing new: the compacted state re-ships unchanged.
  d = store.drain_and_compact(identity);
  EXPECT_EQ(d.raw_drained, 0u);
  EXPECT_EQ(d.covered_seq, 3u);
  EXPECT_EQ(d.pairs.size(), 2u);

  // Two raw edges between distinct vertex pairs of shards 0 and 1 are
  // distinct pairs under identity labels — but once each shard's local
  // component merges (rep2 relabels to rep, a shard-LOCAL merge), the next
  // compaction folds old and new pairs through the new labels and they
  // collapse to one.
  store.add({{fx.rep2[0], fx.rep2[1]}});
  d = store.drain_and_compact([&](VertexId v) {
    const auto s = static_cast<std::size_t>(fx.partition.owner(v));
    return v == fx.rep2[s] ? fx.rep[s] : v;
  });
  EXPECT_EQ(d.raw_drained, 1u);
  EXPECT_EQ(d.covered_seq, 4u);
  // (rep0, rep1) twice -> once, plus the untouched (rep2-pair of shards
  // 2/3) from the first round.
  ASSERT_EQ(d.pairs.size(), 2u);
}

TEST(BoundaryStore, RejectsIntraShardEdges) {
  CrossShardFixture fx;
  BoundaryStore store(fx.partition, false);
  EXPECT_THROW(store.add({{fx.rep[0], fx.rep[0]}}), Error);
}

TEST(Quotient, EmptyPairsYieldEmptyMap) {
  const ReconcileResult r =
      reconcile_quotient({}, 4, sim::MachineModel{}, {});
  EXPECT_TRUE(r.qmap.empty());
  EXPECT_EQ(r.stats.quotient_vertices, 0u);
}

TEST(Quotient, MapsEveryLabelToItsComponentMinimum) {
  // Components {1, 5, 9} and {20, 30}; labels are sparse vertex ids.
  const std::vector<std::pair<VertexId, VertexId>> pairs = {
      {1, 5}, {5, 9}, {20, 30}};
  const ReconcileResult r =
      reconcile_quotient(pairs, 4, sim::MachineModel{}, {});
  EXPECT_EQ(r.stats.quotient_vertices, 5u);
  EXPECT_EQ(r.stats.quotient_edges, 3u);
  EXPECT_GE(r.stats.ranks_used, 1);
  ASSERT_EQ(r.qmap.size(), 3u);  // identity entries omitted
  EXPECT_EQ(r.qmap.at(5), 1u);
  EXPECT_EQ(r.qmap.at(9), 1u);
  EXPECT_EQ(r.qmap.at(30), 20u);
  EXPECT_EQ(r.qmap.count(1), 0u);
  EXPECT_EQ(r.qmap.count(20), 0u);
}

TEST(Quotient, RanksClampToQuotientSizeAndSquare) {
  const std::vector<std::pair<VertexId, VertexId>> pairs = {{2, 7}};
  const ReconcileResult r =
      reconcile_quotient(pairs, 9, sim::MachineModel{}, {});
  // min(9 ranks, 2 quotient vertices) -> largest square <= 2 is 1.
  EXPECT_EQ(r.stats.ranks_used, 1);
  EXPECT_EQ(r.qmap.at(7), 2u);
}

}  // namespace
}  // namespace lacc::shard
