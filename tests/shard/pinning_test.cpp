// Regression suite for retention-ring pinning across the router hop.
//
// The bug: serve's SnapshotStore dropped the oldest epoch unconditionally
// once the ring filled, so a replica session holding ("pinning") a global
// epoch started seeing kRetiredEpoch as soon as the router published
// `retain` more reconciles — the router hop makes this easy to hit because
// the reconcile thread advances epochs on its own clock, independent of
// the session's reads.  The fix: eviction moves pinned epochs to a side
// table; at() keeps answering until the last unpin.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "serve/snapshot.hpp"
#include "shard/router.hpp"
#include "sim/machine.hpp"

namespace lacc::shard {
namespace {

std::shared_ptr<const serve::Snapshot> make_snap(std::uint64_t epoch,
                                                 VertexId n) {
  std::vector<VertexId> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = v;
  return std::make_shared<const serve::Snapshot>(epoch, std::move(labels),
                                                 /*top_k=*/0,
                                                 /*cache_bits=*/0);
}

TEST(SnapshotRingPinning, PinnedEpochSurvivesEviction) {
  serve::SnapshotStore ring(/*retain=*/2);
  for (std::uint64_t e = 0; e <= 2; ++e) ring.publish(make_snap(e, 4));
  ASSERT_EQ(ring.oldest_retained(), 1u);
  ASSERT_EQ(ring.pin(1), serve::SnapshotStore::Lookup::kOk);

  // Push epoch 1 out of the ring; the pin keeps it readable.
  for (std::uint64_t e = 3; e <= 6; ++e) ring.publish(make_snap(e, 4));
  EXPECT_EQ(ring.oldest_retained(), 5u);
  std::shared_ptr<const serve::Snapshot> out;
  EXPECT_EQ(ring.at(1, out), serve::SnapshotStore::Lookup::kOk);
  EXPECT_EQ(out->epoch(), 1u);
  // Unpinned old epochs are gone.
  EXPECT_EQ(ring.at(2, out), serve::SnapshotStore::Lookup::kRetired);

  // Last unpin releases it.
  ring.unpin(1);
  EXPECT_EQ(ring.at(1, out), serve::SnapshotStore::Lookup::kRetired);
}

TEST(SnapshotRingPinning, PinsAreCountedAndValidated) {
  serve::SnapshotStore ring(1);
  ring.publish(make_snap(0, 4));
  ASSERT_EQ(ring.pin(0), serve::SnapshotStore::Lookup::kOk);
  ASSERT_EQ(ring.pin(0), serve::SnapshotStore::Lookup::kOk);  // second session
  ring.publish(make_snap(1, 4));

  std::shared_ptr<const serve::Snapshot> out;
  ring.unpin(0);  // first session leaves; the second still holds it
  EXPECT_EQ(ring.at(0, out), serve::SnapshotStore::Lookup::kOk);
  ring.unpin(0);
  EXPECT_EQ(ring.at(0, out), serve::SnapshotStore::Lookup::kRetired);

  EXPECT_EQ(ring.pin(99), serve::SnapshotStore::Lookup::kFuture);
  EXPECT_EQ(ring.pin(0), serve::SnapshotStore::Lookup::kRetired);
  EXPECT_THROW(ring.unpin(42), Error);
}

// The race the router hop exposes: replica sessions pin and read while the
// reconcile thread publishes (and thus evicts) concurrently.  Every read
// of a held pin must stay kOk for the whole hold.
TEST(SnapshotRingPinning, PinnedReadsRaceEviction) {
  serve::SnapshotStore ring(/*retain=*/2);
  ring.publish(make_snap(0, 8));
  std::atomic<std::uint64_t> published{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> losses{0};

  std::vector<std::thread> sessions;
  for (int t = 0; t < 4; ++t) {
    sessions.emplace_back([&, t] {
      std::uint64_t holds = 0;
      while (!stop.load(std::memory_order_acquire) && holds < 200) {
        const std::uint64_t target =
            published.load(std::memory_order_acquire);
        if (ring.pin(target) != serve::SnapshotStore::Lookup::kOk) continue;
        ++holds;
        for (int k = 0; k < 16; ++k) {
          std::shared_ptr<const serve::Snapshot> out;
          if (ring.at(target, out) != serve::SnapshotStore::Lookup::kOk)
            losses.fetch_add(1, std::memory_order_relaxed);
        }
        ring.unpin(target);
      }
    });
  }

  // Writer: publish well past the retention window while sessions hold.
  for (std::uint64_t e = 1; e <= 3000; ++e) {
    ring.publish(make_snap(e, 8));
    published.store(e, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (auto& s : sessions) s.join();
  EXPECT_EQ(losses.load(), 0u);
}

// End-to-end through the router: a replica pin outlives many reconciles.
TEST(RouterPinning, ReplicaPinOutlivesRetention) {
  RouterOptions o;
  o.shards = 2;
  o.replicas = 2;
  o.retain_epochs = 2;  // tiny window: eviction happens fast
  o.serve.batch_max_edges = 4;
  o.serve.batch_window_ms = 0.2;
  o.reconcile_interval_ms = 0.5;
  Router router(32, 1, sim::MachineModel{}, o);

  // Advance to some epoch and pin it on replica 0.
  ShardTicket t0;
  for (VertexId v = 0; v < 6; v += 2) {
    const auto w = router.insert_edge(v, v + 1);
    ASSERT_EQ(w.status, serve::ServeStatus::kOk);
    t0.merge(w.ticket);
  }
  ASSERT_EQ(router.component_of(0, t0, 0).status, serve::ServeStatus::kOk);
  const std::uint64_t pinned = router.snapshot(0)->epoch();
  ASSERT_EQ(router.pin(pinned, 0), GlobalSnapshotRing::Lookup::kOk);

  // Drive the router far past the retention window: each flushed group of
  // new writes forces at least one more published global epoch (coverage of
  // the new seqs requires a fresh watermark publication).
  for (VertexId g = 0; g < 5; ++g) {
    for (VertexId v = 6 + 4 * g; v < 10 + 4 * g && v + 1 < 32; ++v)
      ASSERT_EQ(router.insert_edge(v, v + 1).status,
                serve::ServeStatus::kOk);
    router.flush();
  }
  EXPECT_GT(router.global_epoch(), pinned + o.retain_epochs);

  // The pinned epoch is still readable on replica 0 — and only there.
  EXPECT_EQ(router.component_at(pinned, 3, 0).status,
            serve::ServeStatus::kOk);
  router.unpin(pinned, 0);
  router.stop();
  // After stop (final epoch published), the unpinned epoch has retired.
  EXPECT_EQ(router.component_at(pinned, 3, 0).status,
            serve::ServeStatus::kRetiredEpoch);
}

}  // namespace
}  // namespace lacc::shard
