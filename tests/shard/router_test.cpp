// Functional tests for lacc::shard::Router: the correctness matrix
// (composed global labels bit-identical to the from-scratch replay across
// shard counts and rank counts), read-your-writes through replicas, ticket
// validation, the 1-shard serve-equivalence golden, admission policies, and
// per-shard trace tagging.
#include "shard/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/lacc_dist.hpp"
#include "graph/generators.hpp"
#include "serve/trace.hpp"
#include "shard/workload.hpp"
#include "sim/machine.hpp"

namespace lacc::shard {
namespace {

RouterOptions fast_options(int shards, int replicas) {
  RouterOptions o;
  o.shards = shards;
  o.replicas = replicas;
  o.serve.batch_max_edges = 32;
  o.serve.batch_window_ms = 0.5;
  o.reconcile_interval_ms = 1.0;
  o.record_applied = true;
  return o;
}

/// Canonical labels of the accumulated graph, computed from scratch.
std::vector<VertexId> reference_labels(const graph::EdgeList& el, int nranks) {
  return core::normalize_labels(
      core::lacc_dist(el, nranks, sim::MachineModel{}).cc.parent);
}

TEST(Router, ServesGlobalEpochZeroImmediately) {
  Router router(16, 1, sim::MachineModel{}, fast_options(2, 2));
  for (int r = 0; r < 2; ++r) {
    const serve::ReadResult q = router.component_of(5, {}, r);
    EXPECT_EQ(q.status, serve::ServeStatus::kOk);
    EXPECT_EQ(q.epoch, 0u);
    EXPECT_EQ(q.label, 5u);
    EXPECT_EQ(router.snapshot(r)->view().num_components(), 16u);
  }
}

TEST(Router, CorrectnessMatrixAcrossShardsAndRanks) {
  const VertexId n = 64;
  const graph::EdgeList stream = graph::erdos_renyi(n, 140, /*seed=*/11);
  for (const int shards : {1, 2, 4}) {
    for (const int nranks : {1, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " nranks=" << nranks);
      Router router(n, nranks, sim::MachineModel{},
                    fast_options(shards, 2));
      for (const graph::Edge& e : stream.edges)
        ASSERT_EQ(router.insert_edge(e.u, e.v).status,
                  serve::ServeStatus::kOk);
      router.flush();
      router.stop();

      // The final global snapshot equals the from-scratch recompute of the
      // full accumulated stream, on every replica.
      graph::EdgeList accumulated(n);
      for (int s = 0; s < shards; ++s)
        for (const graph::EdgeList& batch : router.shard(s).applied_batches())
          for (const graph::Edge& e : batch.edges) accumulated.add(e.u, e.v);
      EXPECT_EQ(accumulated.size(), stream.size());
      const std::vector<VertexId> expect = reference_labels(accumulated, 4);
      for (int r = 0; r < 2; ++r)
        EXPECT_EQ(router.snapshot(r)->view().labels(), expect)
            << "replica " << r;

      // And *every* published global epoch replays bit-identically.
      const std::uint64_t verified = router.verify_epochs(4);
      EXPECT_EQ(verified, router.history().size());
      EXPECT_GE(verified, 2u);  // at least epoch 0 and the final epoch
    }
  }
}

TEST(Router, OneShardHasNoBoundaryTraffic) {
  const VertexId n = 48;
  const graph::EdgeList stream = graph::erdos_renyi(n, 90, /*seed=*/3);
  Router router(n, 1, sim::MachineModel{}, fast_options(1, 1));
  for (const graph::Edge& e : stream.edges)
    ASSERT_EQ(router.insert_edge(e.u, e.v).status, serve::ServeStatus::kOk);
  router.flush();
  router.stop();
  EXPECT_EQ(router.boundary().total_raw(), 0u);
  EXPECT_EQ(router.boundary().total_words_moved(), 0u);
  // The single shard ingested everything, exactly like an unsharded
  // serve::Server: its local labels ARE the global labels.
  EXPECT_EQ(router.snapshot(0)->view().labels(),
            router.shard(0).snapshot()->labels());
  EXPECT_EQ(router.snapshot(0)->view().labels(), reference_labels(stream, 1));
}

TEST(Router, ReadYourWritesThroughReplicas) {
  Router router(32, 1, sim::MachineModel{}, fast_options(4, 2));
  // A chain crossing shards; the merged session ticket must make any
  // replica observe every prior write of the session.
  ShardTicket session;
  for (VertexId v = 0; v + 1 < 10; ++v) {
    const ShardWriteResult w = router.insert_edge(v, v + 1);
    ASSERT_EQ(w.status, serve::ServeStatus::kOk);
    ASSERT_EQ(w.ticket.marks.size(), 1u);
    session.merge(w.ticket);
    for (int r = 0; r < 2; ++r) {
      const serve::ReadResult q = router.same_component(0, v + 1, session, r);
      EXPECT_EQ(q.status, serve::ServeStatus::kOk);
      EXPECT_TRUE(q.same) << "v=" << v << " replica=" << r;
    }
  }
  router.stop();
}

TEST(Router, InvalidTicketsAreRejected) {
  Router router(32, 1, sim::MachineModel{}, fast_options(2, 1));
  ShardTicket bogus_seq;
  bogus_seq.marks.emplace_back(0, 999);  // never issued
  EXPECT_EQ(router.component_of(1, bogus_seq).status,
            serve::ServeStatus::kInvalidTicket);
  ShardTicket bogus_shard;
  bogus_shard.marks.emplace_back(7, 1);  // no such shard
  EXPECT_EQ(router.component_of(1, bogus_shard).status,
            serve::ServeStatus::kInvalidTicket);
  EXPECT_EQ(router.insert_edge(1, 99).status,
            serve::ServeStatus::kUnknownVertex);
  EXPECT_EQ(router.component_of(99).status,
            serve::ServeStatus::kUnknownVertex);
  EXPECT_GE(router.stats().invalid_tickets, 2u);
}

TEST(Router, ShedAdmissionKeepsEpochsConsistent) {
  const VertexId n = 64;
  const graph::EdgeList stream = graph::erdos_renyi(n, 200, /*seed=*/5);
  RouterOptions o = fast_options(4, 1);
  o.serve.admission = serve::Admission::kShed;
  o.serve.queue_capacity = 16;  // tiny: provoke shedding
  Router router(n, 1, sim::MachineModel{}, o);
  std::uint64_t accepted = 0;
  for (const graph::Edge& e : stream.edges) {
    const ShardWriteResult w = router.insert_edge(e.u, e.v);
    ASSERT_TRUE(w.status == serve::ServeStatus::kOk ||
                w.status == serve::ServeStatus::kShed);
    if (w.status == serve::ServeStatus::kOk) ++accepted;
  }
  router.flush();
  router.stop();
  EXPECT_GT(accepted, 0u);
  // Shed writes never reach any shard; the prefix replay covers exactly
  // the accepted ones.
  EXPECT_EQ(router.verify_epochs(1), router.history().size());
}

TEST(Router, StatsAggregateShardsAndReplicas) {
  const VertexId n = 64;
  const graph::EdgeList stream = graph::erdos_renyi(n, 120, /*seed=*/9);
  Router router(n, 1, sim::MachineModel{}, fast_options(4, 3));
  ShardWorkloadOptions wo;
  wo.readers = 3;
  wo.writers = 2;
  wo.seed = 42;
  const ShardWorkloadReport rep = run_shard_workload(router, stream, wo);
  router.stop();
  EXPECT_EQ(rep.session_violations, 0u);
  EXPECT_EQ(rep.held_pin_losses, 0u);
  EXPECT_EQ(rep.writes_accepted, stream.size());

  const RouterStats st = router.stats();
  ASSERT_EQ(st.shard_stats.size(), 4u);
  ASSERT_EQ(st.replica_stats.size(), 3u);
  EXPECT_EQ(st.writes_accepted, stream.size());
  EXPECT_GT(st.replica_reads, 0u);
  EXPECT_GT(st.global_epoch, 0u);
  EXPECT_GT(st.reconcile_rounds, 0u);
  EXPECT_GT(st.boundary_raw_total, 0u);
  EXPECT_GT(st.boundary_words_moved, 0u);
  // Every boundary edge counts once on each side.
  std::uint64_t per_shard_sum = 0;
  for (const std::uint64_t c : st.boundary_per_shard) per_shard_sum += c;
  EXPECT_EQ(per_shard_sum, 2 * st.boundary_raw_total);
}

TEST(Router, TraceSpansCarryShardIds) {
  RouterOptions o = fast_options(2, 1);
  o.serve.record_requests = true;
  Router router(16, 1, sim::MachineModel{}, o);
  for (VertexId v = 0; v + 1 < 8; ++v)
    ASSERT_EQ(router.insert_edge(v, v + 1).status, serve::ServeStatus::kOk);
  router.flush();
  router.stop();
  for (int s = 0; s < 2; ++s) {
    const auto& spans = router.shard(s).request_log().spans();
    ASSERT_FALSE(spans.empty()) << "shard " << s;
    for (const serve::RequestSpan& span : spans)
      EXPECT_EQ(span.shard, s) << span.name;
    std::ostringstream os;
    serve::write_request_trace(os, spans, "shard");
    EXPECT_NE(os.str().find("\"shard\""), std::string::npos);
  }
}

}  // namespace
}  // namespace lacc::shard
