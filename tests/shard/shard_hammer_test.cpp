// Concurrency hammer for the sharded serving stack: many writer and reader
// threads against a 4-shard / 2-replica router, with online
// read-your-writes checks through replicas and held pins racing the
// reconcile's eviction.  Run under TSan in CI (sharded-serving job); the
// invariants must hold under any interleaving:
//   * session reads with a merged ticket always observe the session's
//     writes (zero violations),
//   * held pins never lose their epoch (zero losses),
//   * after stop, every published global epoch replays bit-identically.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "shard/router.hpp"
#include "shard/workload.hpp"
#include "sim/machine.hpp"

namespace lacc::shard {
namespace {

TEST(ShardHammer, MixedWorkloadKeepsEveryInvariant) {
  const VertexId n = 128;
  const graph::EdgeList stream = graph::erdos_renyi(n, 400, /*seed=*/21);

  RouterOptions o;
  o.shards = 4;
  o.replicas = 2;
  o.retain_epochs = 3;  // small: pins race eviction constantly
  o.serve.batch_max_edges = 16;
  o.serve.batch_window_ms = 0.2;
  o.reconcile_interval_ms = 0.5;
  o.record_applied = true;
  Router router(n, 1, sim::MachineModel{}, o);

  ShardWorkloadOptions wo;
  wo.readers = 6;
  wo.writers = 4;
  wo.seed = 99;
  wo.session_every = 4;
  wo.pinned_every = 8;
  wo.hold_every = 2;
  const ShardWorkloadReport rep = run_shard_workload(router, stream, wo);

  EXPECT_EQ(rep.writes_accepted, stream.size());
  EXPECT_GT(rep.session_reads, 0u);
  EXPECT_EQ(rep.session_violations, 0u);
  EXPECT_GT(rep.held_pins, 0u);
  EXPECT_EQ(rep.held_pin_losses, 0u);
  EXPECT_EQ(rep.read_errors, 0u);

  router.stop();
  EXPECT_EQ(router.verify_epochs(1), router.history().size());
  EXPECT_GE(router.history().size(), 2u);
}

TEST(ShardHammer, ShedAdmissionUnderPressure) {
  const VertexId n = 96;
  const graph::EdgeList stream = graph::erdos_renyi(n, 300, /*seed=*/33);

  RouterOptions o;
  o.shards = 2;
  o.replicas = 2;
  o.serve.admission = serve::Admission::kShed;
  o.serve.queue_capacity = 8;
  o.serve.batch_max_edges = 8;
  o.serve.batch_window_ms = 0.2;
  o.reconcile_interval_ms = 0.5;
  o.record_applied = true;
  Router router(n, 1, sim::MachineModel{}, o);

  ShardWorkloadOptions wo;
  wo.readers = 4;
  wo.writers = 4;
  wo.seed = 7;
  const ShardWorkloadReport rep = run_shard_workload(router, stream, wo);

  EXPECT_EQ(rep.session_violations, 0u);
  EXPECT_EQ(rep.held_pin_losses, 0u);
  // Accepted + shed covers every attempt; the consistency contract holds
  // over exactly the accepted prefix.
  EXPECT_EQ(rep.writes_accepted + rep.writes_shed, rep.writes_attempted);
  router.stop();
  EXPECT_EQ(router.verify_epochs(1), router.history().size());
}

}  // namespace
}  // namespace lacc::shard
