// Analytics endpoints on shard::Router: the composed view must equal the
// full ingested graph after flush() — shard-local snapshots plus every
// routed cross-shard boundary edge — across shard counts, with the same
// gating and counter contracts as the single-server endpoints.
#include "shard/router.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "kernel/reference.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace lacc::shard {
namespace {

constexpr VertexId kN = 72;

RouterOptions kernel_options(int shards) {
  RouterOptions o;
  o.shards = shards;
  o.serve.batch_max_edges = 32;
  o.serve.enable_kernel_queries = true;
  return o;
}

graph::EdgeList test_graph() {
  // Erdős–Rényi scatters edges across every shard pair, so the composed
  // view leans on both shard snapshots and the boundary log.
  return graph::erdos_renyi(kN, 180, /*seed=*/31);
}

void load(Router& router, const graph::EdgeList& el) {
  for (const graph::Edge& e : el.edges)
    ASSERT_EQ(router.insert_edge(e.u, e.v).status, serve::ServeStatus::kOk);
  router.flush();
}

TEST(ShardKernel, DisabledByDefaultThrows) {
  Router router(kN, 1, sim::MachineModel::edison(), RouterOptions{});
  EXPECT_THROW(router.bfs_dist(0), Error);
  EXPECT_THROW(router.pagerank_topk(4), Error);
  EXPECT_THROW(router.triangle_count(), Error);
  EXPECT_THROW(router.compose_view(), Error);
}

TEST(ShardKernel, ComposedViewEqualsFullGraph) {
  const auto el = test_graph();
  const auto bfs_truth = kernel::reference_bfs_distances(el, 0);
  const auto tc_truth = kernel::reference_triangle_count(el);
  for (const int shards : {1, 2, 4}) {
    Router router(kN, 4, sim::MachineModel::edison(),
                  kernel_options(shards));
    load(router, el);

    const serve::BfsQueryResult b = router.bfs_dist(0);
    ASSERT_EQ(b.status, serve::ServeStatus::kOk) << "shards=" << shards;
    EXPECT_EQ(b.result.dist, bfs_truth) << "shards=" << shards;

    const serve::TriangleQueryResult t = router.triangle_count();
    ASSERT_EQ(t.status, serve::ServeStatus::kOk);
    EXPECT_EQ(t.triangles, tc_truth) << "shards=" << shards;
  }
}

TEST(ShardKernel, PageRankTopKMatchesReference) {
  const auto el = test_graph();
  Router router(kN, 4, sim::MachineModel::edison(), kernel_options(2));
  load(router, el);
  const serve::PageRankQueryResult r = router.pagerank_topk(5);
  ASSERT_EQ(r.status, serve::ServeStatus::kOk);
  const kernel::KernelOptions defaults;
  const auto truth = kernel::top_k_ranks(
      kernel::reference_pagerank(el, defaults.damping, defaults.tolerance,
                                 defaults.max_iterations),
      5);
  ASSERT_EQ(r.top.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(r.top[i].v, truth[i].v) << "i=" << i;
    EXPECT_NEAR(r.top[i].rank, truth[i].rank, 1e-8);
  }
}

TEST(ShardKernel, ComposedViewIsCachedUntilStateMoves) {
  const auto el = test_graph();
  Router router(kN, 4, sim::MachineModel::edison(), kernel_options(2));
  load(router, el);
  const auto v1 = router.compose_view();
  const auto v2 = router.compose_view();
  // Same shard epochs, same boundary count: the composed view is reused.
  EXPECT_EQ(v1.get(), v2.get());
  // New edge, new epochs: the cache must miss and rebuild.
  ASSERT_EQ(router.insert_edge(0, kN - 1).status, serve::ServeStatus::kOk);
  router.flush();
  const auto v3 = router.compose_view();
  EXPECT_NE(v1.get(), v3.get());
}

TEST(ShardKernel, UnknownVertexAndCounters) {
  const auto el = test_graph();
  Router router(kN, 4, sim::MachineModel::edison(), kernel_options(2));
  load(router, el);
  const auto before = router.stats();
  EXPECT_EQ(router.bfs_dist(kN).status, serve::ServeStatus::kUnknownVertex);
  (void)router.triangle_count();
  const auto after = router.stats();
  EXPECT_EQ(after.kernel_queries, before.kernel_queries + 2);
  EXPECT_GT(after.kernel_modeled_seconds, before.kernel_modeled_seconds);
}

TEST(ShardKernel, MatchesSingleShardAnswers) {
  const auto el = test_graph();
  Router one(kN, 4, sim::MachineModel::edison(), kernel_options(1));
  Router four(kN, 4, sim::MachineModel::edison(), kernel_options(4));
  load(one, el);
  load(four, el);
  EXPECT_EQ(one.bfs_dist(5).result.dist, four.bfs_dist(5).result.dist);
  EXPECT_EQ(one.triangle_count().triangles,
            four.triangle_count().triangles);
}

}  // namespace
}  // namespace lacc::shard
