#include <gtest/gtest.h>

#include <numeric>

#include "sim/runtime.hpp"
#include "support/partition.hpp"

namespace lacc::sim {
namespace {

constexpr int kRanks = 6;

TEST(Collectives, BroadcastDeliversRootData) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = {10, 20, 30};
    comm.bcast(data, 2);
    EXPECT_EQ(data, (std::vector<int>{10, 20, 30}));
  });
}

TEST(Collectives, BroadcastEmptyVector) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 0) data.clear();
    comm.bcast(data, 0);
    EXPECT_TRUE(data.empty());
  });
}

TEST(Collectives, AllreduceSum) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    const int total =
        comm.allreduce(comm.rank() + 1, [](int a, int b) { return a + b; });
    EXPECT_EQ(total, 21);  // 1+2+...+6
  });
}

TEST(Collectives, AllreduceMaxAndMin) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    const int mx =
        comm.allreduce(comm.rank(), [](int a, int b) { return std::max(a, b); });
    const int mn =
        comm.allreduce(comm.rank(), [](int a, int b) { return std::min(a, b); });
    EXPECT_EQ(mx, kRanks - 1);
    EXPECT_EQ(mn, 0);
  });
}

TEST(Collectives, AllgathervConcatenatesInRankOrder) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    // Rank r contributes r copies of r (rank 0 contributes nothing).
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    std::vector<std::size_t> counts;
    const auto all = comm.allgatherv(mine, &counts);
    std::vector<int> expected;
    for (int r = 0; r < kRanks; ++r)
      for (int i = 0; i < r; ++i) expected.push_back(r);
    EXPECT_EQ(all, expected);
    for (int r = 0; r < kRanks; ++r)
      EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                static_cast<std::size_t>(r));
  });
}

TEST(Collectives, AlltoallvRoutesPersonalizedData) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    // Rank r sends the value 100*r + d to destination d.
    std::vector<int> send;
    std::vector<std::size_t> counts(kRanks, 1);
    for (int d = 0; d < kRanks; ++d) send.push_back(100 * comm.rank() + d);
    std::vector<std::size_t> recvcounts;
    const auto recv =
        comm.alltoallv(send, counts, AllToAllAlgo::kPairwise, &recvcounts);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(kRanks));
    for (int s = 0; s < kRanks; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], 100 * s + comm.rank());
      EXPECT_EQ(recvcounts[static_cast<std::size_t>(s)], 1u);
    }
  });
}

TEST(Collectives, AlltoallvVariableCounts) {
  for (const auto algo : {AllToAllAlgo::kPairwise, AllToAllAlgo::kHypercube,
                          AllToAllAlgo::kSparseHypercube}) {
    run_spmd(kRanks, MachineModel::local(), [algo](Comm& comm) {
      // Rank r sends d copies of r to destination d (0 copies to rank 0).
      std::vector<int> send;
      std::vector<std::size_t> counts(kRanks);
      for (int d = 0; d < kRanks; ++d) {
        counts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d);
        for (int i = 0; i < d; ++i) send.push_back(comm.rank());
      }
      const auto recv = comm.alltoallv(send, counts, algo);
      // Every source sends `my rank` copies; grouped by source.
      ASSERT_EQ(recv.size(),
                static_cast<std::size_t>(comm.rank()) * kRanks);
      for (int s = 0; s < kRanks; ++s)
        for (int i = 0; i < comm.rank(); ++i)
          EXPECT_EQ(recv[static_cast<std::size_t>(s * comm.rank() + i)], s);
    });
  }
}

TEST(Collectives, ReduceScatterBlockMin) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    const BlockPartition part(60, kRanks);
    // data[i] = i + rank, so the min over ranks at position i is i.
    std::vector<std::uint64_t> data(60);
    for (std::size_t i = 0; i < 60; ++i)
      data[i] = i + static_cast<std::size_t>(comm.rank());
    const auto mine = comm.reduce_scatter_block(
        data, [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); },
        part);
    const auto b = part.begin(static_cast<std::uint64_t>(comm.rank()));
    ASSERT_EQ(mine.size(), part.size(static_cast<std::uint64_t>(comm.rank())));
    for (std::size_t i = 0; i < mine.size(); ++i) EXPECT_EQ(mine[i], b + i);
  });
}

TEST(Collectives, SendrecvAlongPermutation) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    // Cyclic shift: send to rank+1, receive from rank-1.
    const int dest = (comm.rank() + 1) % kRanks;
    const int src = (comm.rank() + kRanks - 1) % kRanks;
    std::vector<int> send = {comm.rank() * 7};
    const auto recv = comm.sendrecv(send, dest, src);
    ASSERT_EQ(recv.size(), 1u);
    EXPECT_EQ(recv[0], src * 7);
  });
}

TEST(Collectives, SendrecvSelfExchange) {
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    std::vector<int> send = {comm.rank()};
    const auto recv = comm.sendrecv(send, comm.rank(), comm.rank());
    EXPECT_EQ(recv, send);
  });
}

TEST(Collectives, SplitFormsRowGroups) {
  // 6 ranks -> 2 colors of 3 ranks each, ordered by key.
  run_spmd(kRanks, MachineModel::local(), [](Comm& comm) {
    const int color = comm.rank() / 3;
    const int key = comm.rank() % 3;
    Comm sub = comm.split(color, key);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), key);
    // Sub-communicator collectives only involve the group.
    const int group_sum =
        sub.allreduce(comm.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(group_sum, color == 0 ? 0 + 1 + 2 : 3 + 4 + 5);
  });
}

TEST(Collectives, SplitReverseKeyOrdersRanks) {
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - comm.rank());
  });
}

TEST(Collectives, NestedSplitsAndCollectivesInterleave) {
  // Exercise the 2D-grid pattern: row and column groups both alive, with
  // collectives on each.
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    const int row = comm.rank() / 2, col = comm.rank() % 2;
    Comm row_comm = comm.split(row, col);
    Comm col_comm = comm.split(2 + col, row);
    const int row_sum =
        row_comm.allreduce(comm.rank(), [](int a, int b) { return a + b; });
    const int col_sum =
        col_comm.allreduce(comm.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(row_sum, row == 0 ? 1 : 5);
    EXPECT_EQ(col_sum, col == 0 ? 2 : 4);
    comm.barrier();
  });
}

}  // namespace
}  // namespace lacc::sim
