// Edge cases and accounting details of the SPMD communicator.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/runtime.hpp"
#include "support/partition.hpp"

namespace lacc::sim {
namespace {

TEST(CommEdgeCases, BroadcastFromEveryRoot) {
  run_spmd(5, MachineModel::local(), [](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, root * 2, root * 3};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[1], root * 2);
    }
  });
}

TEST(CommEdgeCases, LargePayloadBroadcast) {
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    std::vector<std::uint64_t> data;
    if (comm.rank() == 1) {
      data.resize(100000);
      std::iota(data.begin(), data.end(), 0ull);
    }
    comm.bcast(data, 1);
    ASSERT_EQ(data.size(), 100000u);
    EXPECT_EQ(data[99999], 99999u);
  });
}

TEST(CommEdgeCases, AllgathervWithAllEmptyContributions) {
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    const std::vector<int> empty;
    const auto all = comm.allgatherv(empty);
    EXPECT_TRUE(all.empty());
  });
}

TEST(CommEdgeCases, AlltoallvAllToSelf) {
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    std::vector<int> send = {comm.rank() * 11};
    std::vector<std::size_t> counts(4, 0);
    counts[static_cast<std::size_t>(comm.rank())] = 1;
    const auto recv = comm.alltoallv(send, counts);
    ASSERT_EQ(recv.size(), 1u);
    EXPECT_EQ(recv[0], comm.rank() * 11);
  });
}

TEST(CommEdgeCases, AlltoallvTotallyEmpty) {
  for (const auto algo : {AllToAllAlgo::kPairwise, AllToAllAlgo::kHypercube,
                          AllToAllAlgo::kSparseHypercube}) {
    run_spmd(4, MachineModel::local(), [algo](Comm& comm) {
      const std::vector<int> send;
      const std::vector<std::size_t> counts(4, 0);
      const auto recv = comm.alltoallv(send, counts, algo);
      EXPECT_TRUE(recv.empty());
    });
  }
}

TEST(CommEdgeCases, AlltoallvRejectsBadCounts) {
  EXPECT_THROW(run_spmd(2, MachineModel::local(),
                        [](Comm& comm) {
                          std::vector<int> send = {1, 2, 3};
                          std::vector<std::size_t> counts = {1, 1};  // covers 2
                          (void)comm.alltoallv(send, counts);
                        }),
               Error);
}

TEST(CommEdgeCases, ReduceScatterUnevenLength) {
  run_spmd(3, MachineModel::local(), [](Comm& comm) {
    const BlockPartition part(10, 3);  // blocks of 4, 3, 3
    std::vector<std::uint64_t> data(10, static_cast<std::uint64_t>(comm.rank()));
    const auto mine = comm.reduce_scatter_block(
        data, [](std::uint64_t a, std::uint64_t b) { return a + b; }, part);
    ASSERT_EQ(mine.size(), part.size(static_cast<std::uint64_t>(comm.rank())));
    for (const auto v : mine) EXPECT_EQ(v, 0u + 1u + 2u);
  });
}

TEST(CommEdgeCases, SendrecvRejectsMismatchedPermutation) {
  EXPECT_THROW(run_spmd(2, MachineModel::local(),
                        [](Comm& comm) {
                          // Both ranks claim to send to rank 0: rank 1 never
                          // receives, and rank 0's source check must fire.
                          std::vector<int> send = {1};
                          (void)comm.sendrecv(send, 0, 1);
                        }),
               Error);
}

TEST(CommEdgeCases, RepeatedSplitsAreIndependent) {
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    for (int round = 0; round < 3; ++round) {
      Comm sub = comm.split(comm.rank() % 2, comm.rank());
      EXPECT_EQ(sub.size(), 2);
      const int sum =
          sub.allreduce(1, [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, 2);
    }
  });
}

TEST(CommEdgeCases, SplitSingletonGroups) {
  run_spmd(3, MachineModel::local(), [](Comm& comm) {
    Comm solo = comm.split(comm.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    solo.barrier();  // must not deadlock
  });
}

TEST(CommEdgeCases, MessageAndByteCountersAccumulate) {
  const auto result = run_spmd(4, MachineModel::edison(), [](Comm& comm) {
    std::vector<std::uint64_t> data(100, 7);
    (void)comm.allgatherv(data);
    (void)comm.allgatherv(data);
  });
  const auto& total = result.stats[0].total;
  EXPECT_GT(total.messages, 0u);
  // Each allgather receives 3 ranks' worth of 800 bytes.
  EXPECT_EQ(total.bytes, 2u * 3u * 100u * sizeof(std::uint64_t));
}

TEST(StatsReductions, MaxAndSumOverRanks) {
  std::vector<RankStats> per_rank(2);
  auto record = [](RankStats& rs, double comm_s) {
    const auto id = rs.spans.open("a", 0.0, 0.0);
    rs.spans.current()->comm_seconds = comm_s;
    rs.spans.close(id, comm_s, 0.0);
  };
  per_rank[0].total.bytes = 10;
  record(per_rank[0], 1.0);
  per_rank[0].counters["x"] = 5;
  per_rank[1].total.bytes = 30;
  record(per_rank[1], 0.5);
  per_rank[1].counters["x"] = 2;

  const auto mx = max_over_ranks(per_rank);
  EXPECT_EQ(mx.total.bytes, 30u);
  EXPECT_DOUBLE_EQ(mx.regions.at("a").comm_seconds, 1.0);
  EXPECT_EQ(mx.counters.at("x"), 5u);

  const auto sum = sum_over_ranks(per_rank);
  EXPECT_EQ(sum.total.bytes, 40u);
  EXPECT_DOUBLE_EQ(sum.regions.at("a").comm_seconds, 1.5);
  EXPECT_EQ(sum.counters.at("x"), 7u);
}

TEST(CommEdgeCases, NestedRegionsRollUpInclusively) {
  const auto result = run_spmd(1, MachineModel::local(), [](Comm& comm) {
    Region outer(comm, "outer");
    comm.charge_compute(1e9);
    {
      Region inner(comm, "inner");
      comm.charge_compute(2e9);
    }
    comm.charge_compute(3e9);
  });
  // Flat per-name totals are inclusive: "outer" covers its nested span.
  const auto regions = result.stats[0].region_totals();
  EXPECT_NEAR(regions.at("outer").compute_seconds, 6.0, 1e-9);
  EXPECT_NEAR(regions.at("inner").compute_seconds, 2.0, 1e-9);
  // The raw spans keep the exclusive attribution and the nesting.
  const auto& spans = result.stats[0].spans.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_NEAR(spans[0].self.compute_seconds, 4.0, 1e-9);
  EXPECT_NEAR(spans[0].total.compute_seconds, 6.0, 1e-9);
  EXPECT_NEAR(spans[1].self.compute_seconds, 2.0, 1e-9);
}

}  // namespace
}  // namespace lacc::sim
