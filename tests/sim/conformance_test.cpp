// Negative-test suite for the SPMD conformance checker: seed each mismatch
// class the checker promises to catch and assert the report names the
// offending collective, rank, and call site — instead of the deadlock or
// silent corruption the unchecked runtime would produce.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/lacc_dist.hpp"
#include "dist/dist_vec.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"
#include "support/arena.hpp"
#include "support/checking.hpp"
#include "support/partition.hpp"

namespace lacc::sim {
namespace {

/// Pin the checker level for one test and restore it afterwards (the suite
/// must pass under any ambient LACC_CHECK setting).
class ScopedLevel {
 public:
  explicit ScopedLevel(check::Level l) : prev_(check::level()) {
    check::set_level(l);
  }
  ~ScopedLevel() { check::set_level(prev_); }

 private:
  check::Level prev_;
};

/// Run `body` and return the ConformanceError message it must produce.
std::string conformance_message(int ranks,
                                const std::function<void(Comm&)>& body) {
  try {
    run_spmd(ranks, MachineModel::local(), body);
  } catch (const check::ConformanceError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ConformanceError, got: " << e.what();
    return "";
  }
  ADD_FAILURE() << "expected ConformanceError, got clean run";
  return "";
}

TEST(Conformance, WrongBroadcastRootReportsDivergingRank) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    std::vector<int> data{comm.rank()};
    // Rank 2 disagrees about who broadcasts.
    comm.bcast(data, comm.rank() == 2 ? 1 : 0);
  });
  EXPECT_NE(msg.find("broadcast roots differ"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("diverges"), std::string::npos) << msg;
  EXPECT_NE(msg.find("conformance_test.cpp"), std::string::npos) << msg;
}

TEST(Conformance, SkippedBarrierReportsOpMismatch) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    // Rank 0 skips the barrier and goes straight to the allreduce that every
    // other rank issues one sync point later.
    if (comm.rank() != 0) comm.barrier();
    comm.allreduce(1, [](int a, int b) { return a + b; });
    if (comm.rank() == 0) comm.barrier();
  });
  EXPECT_NE(msg.find("skipped or reordered collective"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("allreduce"), std::string::npos) << msg;
  EXPECT_NE(msg.find("barrier"), std::string::npos) << msg;
}

TEST(Conformance, ReorderedCollectivesReportOpMismatch) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(3, [](Comm& comm) {
    std::vector<int> data{1, 2, 3};
    if (comm.rank() == 1) {
      comm.allreduce(1, [](int a, int b) { return a + b; });
      comm.bcast(data, 0);
    } else {
      comm.bcast(data, 0);
      comm.allreduce(1, [](int a, int b) { return a + b; });
    }
  });
  EXPECT_NE(msg.find("skipped or reordered collective"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(Conformance, ElementSizeMismatchIsDetected) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    if (comm.rank() == 3) {
      comm.allreduce(std::uint32_t{1},
                     [](std::uint32_t a, std::uint32_t b) { return a + b; });
    } else {
      comm.allreduce(std::uint64_t{1},
                     [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }
  });
  EXPECT_NE(msg.find("element sizes differ"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
}

TEST(Conformance, ReduceScatterCountMismatchIsDetected) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    // Rank 1 brings a 9-element array to a reduce-scatter everyone else
    // sized at 8: the buffers are not congruent.
    const std::size_t n = comm.rank() == 1 ? 9 : 8;
    const std::vector<std::uint64_t> data(n, 1);
    const BlockPartition part(n, static_cast<std::uint64_t>(comm.size()));
    comm.reduce_scatter_block(
        data, [](std::uint64_t a, std::uint64_t b) { return a + b; }, part);
  });
  EXPECT_NE(msg.find("buffer lengths differ"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(Conformance, EarlyReturnReportsMissingCollective) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    if (comm.rank() == 3) return;  // retires without the barrier below
    comm.barrier();
  });
  EXPECT_NE(msg.find("finished their SPMD body"), std::string::npos) << msg;
}

TEST(Conformance, AliasedIntoBufferNamesRankAndCallSite) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(3, [](Comm& comm) {
    std::vector<int> buf{comm.rank()};
    if (comm.rank() == 1) {
      comm.allgatherv_into(buf, buf);  // aliased send/recv
    } else {
      std::vector<int> out;
      comm.allgatherv_into(buf, out);
    }
  });
  EXPECT_NE(msg.find("aliasing violation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allgatherv_into"), std::string::npos) << msg;
  EXPECT_NE(msg.find("conformance_test.cpp"), std::string::npos) << msg;
}

TEST(Conformance, SendrecvNonPermutationIsDetectedAtFullLevel) {
  ScopedLevel level(check::Level::kFull);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    // Everyone sends to rank 0: dests are not a permutation, so three ranks
    // would read buffers nobody addressed to them.
    const std::vector<int> payload{comm.rank()};
    comm.sendrecv(payload, 0, 0);
  });
  EXPECT_NE(msg.find("permutation"), std::string::npos) << msg;
}

TEST(Conformance, SendrecvNonConjugateSrcIsDetectedAtFullLevel) {
  ScopedLevel level(check::Level::kFull);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    // dest is the identity permutation, but rank 2 expects to receive from
    // rank 1, which is sending to itself.
    const std::vector<int> payload{comm.rank()};
    comm.sendrecv(payload, comm.rank(), comm.rank() == 2 ? 1 : comm.rank());
  });
  EXPECT_NE(msg.find("conjugate"), std::string::npos) << msg;
}

TEST(Conformance, SplitOnSubsetOfRanksIsDetected) {
  ScopedLevel level(check::Level::kCheap);
  const std::string msg = conformance_message(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();  // rank 0 sits out the split everyone else issues
    } else {
      comm.split(0, comm.rank());
    }
  });
  EXPECT_NE(msg.find("skipped or reordered collective"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("split"), std::string::npos) << msg;
}

TEST(Conformance, InjectedFailureInsideAlltoallvUnwindsSafely) {
  // Kill rank 2 inside alltoallv_into's exchange window while its siblings
  // are copying out of posted buffers.  The SyncWindow drain must keep the
  // dying rank's buffers alive until every reader has left, so this runs
  // clean under ASan/TSan, and the injected error (not a crash or a
  // Poisoned) must reach the caller.
  ScopedLevel level(check::Level::kCheap);
  check::arm_fail_point("alltoallv_into.window", 2);
  const int ranks = 4;
  try {
    run_spmd(ranks, MachineModel::local(), [&](Comm& comm) {
      // Big per-destination payloads so sibling copies are in flight when
      // rank 2 dies.
      const std::size_t chunk = 1 << 15;
      const std::vector<std::uint64_t> send(
          chunk * static_cast<std::size_t>(comm.size()),
          static_cast<std::uint64_t>(comm.rank()));
      const std::vector<std::size_t> counts(
          static_cast<std::size_t>(comm.size()), chunk);
      for (int round = 0; round < 4; ++round) {
        std::vector<std::uint64_t> out;
        comm.alltoallv_into(send, counts, out);
        EXPECT_EQ(out.size(), send.size());
      }
    });
    ADD_FAILURE() << "expected the injected failure to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected failure"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << e.what();
  }
  check::disarm_fail_points();
}

TEST(Conformance, DistVecBlockFenceTripsOnForeignRank) {
  ScopedLevel level(check::Level::kFull);
  std::atomic<dist::DistVec<std::uint64_t>*> shared{nullptr};
  const std::string msg = conformance_message(4, [&](Comm& comm) {
    dist::ProcGrid grid(comm);
    dist::DistVec<std::uint64_t> vec(grid, 64);
    if (comm.rank() == 0) shared.store(&vec, std::memory_order_release);
    comm.barrier();
    if (comm.rank() == 1) {
      // Touch rank 0's block outside any collective.
      auto* foreign = shared.load(std::memory_order_acquire);
      foreign->set(foreign->begin(), 7);
    }
    comm.barrier();
    comm.barrier();  // keep rank 0 (and vec) alive while rank 1 touches
  });
  EXPECT_NE(msg.find("block fence violation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("DistVec"), std::string::npos) << msg;
}

TEST(Conformance, ArenaRejectsForeignThreadAtFullLevel) {
  ScopedLevel level(check::Level::kFull);
  support::WorkspaceArena arena;
  arena.buffer<int>("owned");  // main thread claims the arena
  std::string msg;
  std::thread intruder([&] {
    try {
      arena.buffer<int>("owned");
    } catch (const check::ConformanceError& e) {
      msg = e.what();
    }
  });
  intruder.join();
  EXPECT_NE(msg.find("foreign thread"), std::string::npos) << msg;
}

TEST(Conformance, CheckerLevelsLeaveResultsBitIdentical) {
  // The checker must not perturb the cost model: modeled time, labeling,
  // and the per-iteration trace are bit-identical at every level.
  const auto el = graph::clustered_components(600, 25, 4.0, 11);
  core::LaccOptions options;
  std::vector<core::DistRunResult> runs;
  for (const auto lvl :
       {check::Level::kOff, check::Level::kCheap, check::Level::kFull}) {
    ScopedLevel level(lvl);
    runs.push_back(core::lacc_dist(el, 9, MachineModel::local(), options));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].modeled_seconds, runs[0].modeled_seconds);
    EXPECT_EQ(runs[i].cc.parent, runs[0].cc.parent);
    EXPECT_EQ(runs[i].cc.iterations, runs[0].cc.iterations);
    ASSERT_EQ(runs[i].cc.trace.size(), runs[0].cc.trace.size());
    for (std::size_t k = 0; k < runs[0].cc.trace.size(); ++k)
      EXPECT_EQ(runs[i].cc.trace[k].modeled_seconds,
                runs[0].cc.trace[k].modeled_seconds);
  }
}

TEST(Conformance, CleanProgramsPassAtFullLevel) {
  ScopedLevel level(check::Level::kFull);
  run_spmd(4, MachineModel::local(), [](Comm& comm) {
    std::vector<int> data{comm.rank()};
    comm.bcast(data, 0);
    const auto gathered = comm.allgatherv(data);
    EXPECT_EQ(gathered.size(), 4u);
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    sub.barrier();
    const int sum = sub.allreduce(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 2);
    comm.barrier();
  });
}

}  // namespace
}  // namespace lacc::sim
