// Tests for the alpha-beta cost accounting: the properties the scaling
// figures rely on, not absolute constants.
#include <gtest/gtest.h>

#include "sim/runtime.hpp"

namespace lacc::sim {
namespace {

TEST(MachineModels, PaperPlatformsAreDistinct) {
  const auto& edison = MachineModel::edison();
  const auto& cori = MachineModel::cori_knl();
  // The paper observes Edison is faster per node than Cori for these
  // irregular workloads: lower latency and higher per-rank work rate.
  EXPECT_LT(edison.alpha_s, cori.alpha_s);
  EXPECT_GT(edison.work_rate, cori.work_rate);
  EXPECT_EQ(edison.procs_per_node, 4);
  EXPECT_EQ(cori.procs_per_node, 4);
  EXPECT_EQ(edison.cores_per_node, 24);
  EXPECT_EQ(cori.cores_per_node, 68);
}

TEST(MachineModels, NodeAndCoreMapping) {
  const auto& edison = MachineModel::edison();
  EXPECT_DOUBLE_EQ(edison.nodes_for_ranks(1024), 256.0);
  EXPECT_DOUBLE_EQ(edison.cores_for_ranks(1024), 6144.0);  // paper Fig. 4
}

TEST(CostModel, CommChargesScaleWithVolume) {
  // Doubling the payload should increase comm time but not message count.
  auto run = [](std::size_t elems) {
    return run_spmd(4, MachineModel::edison(), [elems](Comm& comm) {
      std::vector<std::uint64_t> data(elems, 1);
      (void)comm.allgatherv(data);
    });
  };
  const auto small = run(1000);
  const auto big = run(2000);
  EXPECT_GT(big.stats[0].total.comm_seconds, small.stats[0].total.comm_seconds);
  EXPECT_EQ(big.stats[0].total.messages, small.stats[0].total.messages);
  EXPECT_GT(big.stats[0].total.bytes, small.stats[0].total.bytes);
}

TEST(CostModel, PairwiseLatencyGrowsLinearlyHypercubeLogarithmically) {
  // With tiny payloads the all-to-all cost is latency-dominated; pairwise
  // pays alpha*(p-1), the hypercube alpha*log(p).  This is the optimization
  // that fixed LACC's scaling past 1024 ranks (Section V-B).
  auto run = [](int ranks, AllToAllAlgo algo) {
    return run_spmd(ranks, MachineModel::edison(), [algo, ranks](Comm& comm) {
      std::vector<std::uint64_t> send(static_cast<std::size_t>(ranks), 7);
      std::vector<std::size_t> counts(static_cast<std::size_t>(ranks), 1);
      (void)comm.alltoallv(send, counts, algo);
    });
  };
  const auto pw16 = run(16, AllToAllAlgo::kPairwise);
  const auto hc16 = run(16, AllToAllAlgo::kHypercube);
  EXPECT_EQ(pw16.stats[0].total.messages, 15u);
  EXPECT_EQ(hc16.stats[0].total.messages, 4u);  // log2(16)
  EXPECT_LT(hc16.stats[0].total.comm_seconds,
            pw16.stats[0].total.comm_seconds);
}

TEST(CostModel, SparseHypercubeOnlyCountsActiveRanks) {
  // Only 2 of 16 ranks exchange data: the sparse variant pays ~log(2)
  // rounds rather than log(16).
  auto run = [](AllToAllAlgo algo) {
    return run_spmd(16, MachineModel::edison(), [algo](Comm& comm) {
      std::vector<std::uint64_t> send;
      std::vector<std::size_t> counts(16, 0);
      if (comm.rank() < 2) {
        send.assign(8, 3);
        counts[static_cast<std::size_t>(1 - comm.rank())] = 8;
      }
      (void)comm.alltoallv(send, counts, algo);
    });
  };
  const auto dense = run(AllToAllAlgo::kHypercube);
  const auto sparse = run(AllToAllAlgo::kSparseHypercube);
  EXPECT_LT(sparse.stats[0].total.comm_seconds,
            dense.stats[0].total.comm_seconds);
}

TEST(CostModel, BulkSynchronousClockTakesGroupMax) {
  // One slow rank drags the synchronized clock for everyone.
  const auto result = run_spmd(4, MachineModel::local(), [](Comm& comm) {
    if (comm.rank() == 3) comm.charge_compute(5e9);  // 5 s of local work
    comm.barrier();
  });
  for (const auto t : result.rank_sim_seconds) EXPECT_GE(t, 5.0);
}

TEST(CostModel, EdisonBeatsCoriPerNodeOnIdenticalWork) {
  auto body = [](Comm& comm) {
    std::vector<std::uint64_t> data(10000, 1);
    comm.charge_compute(1e6);
    (void)comm.allgatherv(data);
  };
  const auto edison = run_spmd(4, MachineModel::edison(), body);
  const auto cori = run_spmd(4, MachineModel::cori_knl(), body);
  EXPECT_LT(edison.sim_seconds, cori.sim_seconds);
}

}  // namespace
}  // namespace lacc::sim
