#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace lacc::sim {
namespace {

TEST(MachineModel, FlatMpiVariantConservesNodeResources) {
  const auto& edison = MachineModel::edison();
  const auto flat = edison.flat_mpi_variant();
  EXPECT_EQ(flat.procs_per_node, edison.cores_per_node);
  EXPECT_EQ(flat.threads_per_proc, 1);
  // Node-level compute rate and bandwidth are unchanged: per-rank rate and
  // bandwidth shrink by exactly the rank-count growth.
  EXPECT_DOUBLE_EQ(flat.work_rate * flat.procs_per_node,
                   edison.work_rate * edison.procs_per_node);
  EXPECT_DOUBLE_EQ(flat.procs_per_node / flat.beta_s_per_byte,
                   edison.procs_per_node / edison.beta_s_per_byte);
  EXPECT_DOUBLE_EQ(flat.alpha_s, edison.alpha_s);
}

TEST(MachineModel, FlatMpiVariantRankMapping) {
  const auto flat = MachineModel::edison().flat_mpi_variant();
  // One rank per core: 24 ranks = 1 Edison node.
  EXPECT_DOUBLE_EQ(flat.nodes_for_ranks(24), 1.0);
  EXPECT_DOUBLE_EQ(flat.cores_for_ranks(24), 24.0);
}

TEST(MachineModel, LocalModelIsFastAndSingleCore) {
  const auto& local = MachineModel::local();
  EXPECT_EQ(local.procs_per_node, 1);
  EXPECT_LT(local.alpha_s, MachineModel::edison().alpha_s);
}

}  // namespace
}  // namespace lacc::sim
