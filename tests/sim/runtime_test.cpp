#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "support/error.hpp"

namespace lacc::sim {
namespace {

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> visits{0};
  std::vector<std::atomic<int>> per_rank(8);
  run_spmd(8, MachineModel::local(), [&](Comm& comm) {
    ++visits;
    ++per_rank[static_cast<std::size_t>(comm.rank())];
    EXPECT_EQ(comm.size(), 8);
  });
  EXPECT_EQ(visits.load(), 8);
  for (auto& v : per_rank) EXPECT_EQ(v.load(), 1);
}

TEST(Runtime, SingleRankWorks) {
  const auto result = run_spmd(1, MachineModel::local(), [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
  });
  EXPECT_EQ(result.stats.size(), 1u);
}

TEST(Runtime, PropagatesFirstException) {
  EXPECT_THROW(run_spmd(4, MachineModel::local(),
                        [](Comm& comm) {
                          comm.barrier();
                          if (comm.rank() == 2) throw Error("rank 2 failed");
                          // Other ranks block here; the poison flag must
                          // release them instead of deadlocking the test.
                          comm.barrier();
                        }),
               Error);
}

TEST(Runtime, SimulatedTimeIsDeterministic) {
  auto body = [](Comm& comm) {
    std::vector<int> data(100, comm.rank());
    for (int i = 0; i < 5; ++i) {
      comm.charge_compute(1000.0 * (comm.rank() + 1));
      data = comm.allgatherv(data);
      data.resize(100);
    }
  };
  const auto a = run_spmd(6, MachineModel::edison(), body);
  const auto b = run_spmd(6, MachineModel::edison(), body);
  EXPECT_GT(a.sim_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  ASSERT_EQ(a.rank_sim_seconds.size(), b.rank_sim_seconds.size());
  for (std::size_t r = 0; r < a.rank_sim_seconds.size(); ++r)
    EXPECT_DOUBLE_EQ(a.rank_sim_seconds[r], b.rank_sim_seconds[r]);
}

TEST(Runtime, ComputeChargesAccumulate) {
  const auto result = run_spmd(2, MachineModel::local(), [](Comm& comm) {
    comm.charge_compute(1e9);  // exactly one second at local work_rate
  });
  EXPECT_NEAR(result.stats[0].total.compute_seconds, 1.0, 1e-12);
  EXPECT_NEAR(result.sim_seconds, 1.0, 1e-12);
}

TEST(Runtime, RegionsCaptureCharges) {
  const auto result = run_spmd(2, MachineModel::local(), [](Comm& comm) {
    {
      Region region(comm, "phase-a");
      comm.charge_compute(1e9);
      comm.barrier();
    }
    comm.charge_compute(2e9);  // outside any region
  });
  const auto& stats = result.stats[0];
  const auto regions = stats.region_totals();
  ASSERT_TRUE(regions.count("phase-a"));
  EXPECT_NEAR(regions.at("phase-a").compute_seconds, 1.0, 1e-12);
  EXPECT_NEAR(stats.total.compute_seconds, 3.0, 1e-12);
  EXPECT_GT(regions.at("phase-a").wall_seconds, 0.0);
}

TEST(Runtime, CustomCountersAreRecorded) {
  const auto result = run_spmd(3, MachineModel::local(), [](Comm& comm) {
    comm.add_counter("requests", static_cast<std::uint64_t>(comm.rank()) * 10);
  });
  EXPECT_EQ(result.stats[2].counters.at("requests"), 20u);
}

TEST(Runtime, RejectsAbsurdRankCounts) {
  EXPECT_THROW(run_spmd(0, MachineModel::local(), [](Comm&) {}), Error);
  EXPECT_THROW(run_spmd(5000, MachineModel::local(), [](Comm&) {}), Error);
}

}  // namespace
}  // namespace lacc::sim
