// DeltaStore + DistCsc::merge_delta: the streaming append path must be
// indistinguishable from from-scratch construction on the accumulated edge
// set, for any batch split and rank count.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dist/dist_mat.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"
#include "stream/delta_store.hpp"

namespace lacc::stream {
namespace {

using dist::CscCoord;
using dist::DistCsc;
using dist::ProcGrid;

/// Flatten a block's DCSC arrays into (col, row) pairs for comparison.
std::vector<CscCoord> block_entries(const DistCsc& a) {
  std::vector<CscCoord> out;
  for (std::size_t ci = 0; ci < a.col_ids().size(); ++ci)
    for (const VertexId r : a.col_rows(ci)) out.push_back({r, a.col_ids()[ci]});
  return out;
}

/// Split an edge list into `parts` contiguous batches.
std::vector<graph::EdgeList> split_batches(const graph::EdgeList& el,
                                           std::size_t parts) {
  std::vector<graph::EdgeList> out(parts, graph::EdgeList(el.n));
  for (std::size_t k = 0; k < el.edges.size(); ++k)
    out[k % parts].edges.push_back(el.edges[k]);
  return out;
}

TEST(DeltaStore, IngestMergeMatchesFromScratchConstruction) {
  for (const int ranks : {1, 4, 9}) {
    const auto el = graph::erdos_renyi(97, 300, /*seed=*/7);
    const auto batches = split_batches(el, 3);
    sim::run_spmd(ranks, sim::MachineModel::local(), [&](sim::Comm& world) {
      ProcGrid grid(world);
      DistCsc streamed(grid, graph::EdgeList(el.n));
      DeltaStore delta(grid, el.n);
      for (const auto& batch : batches) delta.ingest(grid, batch);
      delta.mark_pending_processed();  // draining pending runs is an error
      streamed.merge_delta(grid, delta.drain_merged(grid));
      EXPECT_EQ(delta.local_nnz(), 0u);
      EXPECT_EQ(delta.run_count(), 0u);

      const DistCsc scratch(grid, el);
      EXPECT_EQ(streamed.global_nnz(), scratch.global_nnz());
      EXPECT_EQ(block_entries(streamed), block_entries(scratch));
    });
  }
}

TEST(DeltaStore, MergeIntoNonEmptyBaseDropsDuplicates) {
  const auto el = graph::clustered_components(80, 6, 4.0, /*seed=*/3);
  sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    // Base holds the first half; the delta re-inserts everything (so half
    // the delta duplicates the base).
    graph::EdgeList half(el.n);
    half.edges.assign(el.edges.begin(),
                      el.edges.begin() + el.edges.size() / 2);
    DistCsc streamed(grid, half);
    DeltaStore delta(grid, el.n);
    delta.ingest(grid, el);
    delta.mark_pending_processed();
    streamed.merge_delta(grid, delta.drain_merged(grid));

    const DistCsc scratch(grid, el);
    EXPECT_EQ(streamed.global_nnz(), scratch.global_nnz());
    EXPECT_EQ(block_entries(streamed), block_entries(scratch));
  });
}

TEST(DeltaStore, MergeEmptyDeltaIsANoOp) {
  const auto el = graph::erdos_renyi(50, 120, /*seed=*/11);
  sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc a(grid, el);
    const auto before = block_entries(a);
    const auto nnz = a.global_nnz();
    a.merge_delta(grid, {});
    EXPECT_EQ(a.global_nnz(), nnz);
    EXPECT_EQ(block_entries(a), before);
  });
}

TEST(DeltaStore, PendingWatermarkTracksUnprocessedRuns) {
  const auto el = graph::erdos_renyi(60, 150, /*seed=*/5);
  const auto batches = split_batches(el, 3);
  sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DeltaStore delta(grid, el.n);
    delta.ingest(grid, batches[0]);
    delta.ingest(grid, batches[1]);
    EXPECT_EQ(delta.run_count(), 2u);
    EXPECT_EQ(delta.pending_nnz(), delta.local_nnz());

    delta.mark_pending_processed();
    EXPECT_EQ(delta.pending_nnz(), 0u);

    delta.ingest(grid, batches[2]);
    std::size_t pending = 0;
    delta.for_each_pending([&](const CscCoord&) { ++pending; });
    EXPECT_EQ(pending, static_cast<std::size_t>(delta.pending_nnz()));
    EXPECT_LT(delta.pending_nnz(), delta.local_nnz() + 1);

    // Draining resets the watermark with the runs (all processed by now).
    delta.mark_pending_processed();
    const auto merged = delta.drain_merged(grid);
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
    EXPECT_EQ(delta.pending_nnz(), 0u);
    EXPECT_EQ(delta.run_count(), 0u);
  });
}

TEST(DeltaStore, DrainWithPendingRunsIsRejected) {
  // Regression: drain_merged used to silently flatten pending runs into the
  // merge result — edges the labels had never seen went straight into the
  // base, so the next epoch's filter skipped them and components quietly
  // failed to merge.  It is now an LACC_CHECK failure.
  const auto el = graph::erdos_renyi(40, 90, /*seed=*/2);
  sim::run_spmd(1, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DeltaStore delta(grid, el.n);
    delta.ingest(grid, el);
    EXPECT_GT(delta.pending_nnz(), 0u);
    EXPECT_THROW(delta.drain_merged(grid), Error);
    // The store is untouched by the rejected drain; the sanctioned order
    // still works.
    EXPECT_EQ(delta.run_count(), 1u);
    delta.mark_pending_processed();
    EXPECT_FALSE(delta.drain_merged(grid).empty());
  });
}

TEST(DeltaStore, EmptyBatchIngestIsFree) {
  // Regression: an empty batch used to run the full symmetrize + all-to-all
  // and append an empty run, inflating run_count() (spurious compactions)
  // and charging modeled time for nothing.
  const auto el = graph::erdos_renyi(50, 100, /*seed=*/9);
  sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DeltaStore delta(grid, el.n);
    delta.ingest(grid, el);
    const auto runs = delta.run_count();
    const auto nnz = delta.local_nnz();
    const auto seq = delta.last_seq();
    const double t0 = world.state().sim_time;

    const graph::EdgeList empty(el.n);
    EXPECT_EQ(delta.ingest(grid, empty), 0u);
    EXPECT_EQ(delta.run_count(), runs);
    EXPECT_EQ(delta.local_nnz(), nnz);
    EXPECT_EQ(delta.last_seq(), seq);
    EXPECT_EQ(world.state().sim_time, t0);  // no modeled time charged
  });
}

TEST(DeltaStore, RunsAreSortedColumnMajorAndUnique) {
  graph::EdgeList batch(30);
  // Duplicates and a self-loop; ingestion must drop/dedup them.
  batch.add(3, 7);
  batch.add(7, 3);
  batch.add(3, 7);
  batch.add(5, 5);
  batch.add(1, 2);
  sim::run_spmd(1, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DeltaStore delta(grid, batch.n);
    const EdgeId appended = delta.ingest(grid, batch);
    // (3,7) symmetrized once, (1,2) symmetrized: 4 directed entries.
    EXPECT_EQ(appended, 4u);
    std::vector<CscCoord> seen;
    delta.for_each_pending([&](const CscCoord& e) { seen.push_back(e); });
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
    EXPECT_EQ(seen.size(), 4u);
  });
}

}  // namespace
}  // namespace lacc::stream
