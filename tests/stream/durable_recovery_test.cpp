// lacc::stream::durable — crash-consistency proof for the WAL / run-file /
// manifest stack.
//
// The centerpiece is the kill-and-recover matrix: a fail point is armed at
// every named write site (fail_sites()), the engine "dies" mid-write (torn
// partial write + CrashError), and a fresh engine opened on the same
// directory must republish the labels of the last *committed* epoch
// bit-identically, then keep producing correct labels when the stream
// resumes.  The matrix runs at ranks 1/4/9 with compaction forced on and
// off, so every site fires in at least one configuration.
//
// On a label mismatch the test dumps a per-vertex diff under
// $LACC_DURABLE_DIGEST_DIR (when set) — CI uploads those as artifacts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "baselines/union_find.hpp"
#include "core/options.hpp"
#include "graph/generators.hpp"
#include "stream/delta_store.hpp"
#include "stream/durable/failpoint.hpp"
#include "stream/durable/manifest.hpp"
#include "stream/durable/run_file.hpp"
#include "stream/durable/wal.hpp"
#include "stream/engine.hpp"
#include "support/error.hpp"

namespace lacc::stream {
namespace {

namespace fs = std::filesystem;
using dist::CscCoord;

/// Fresh unique directory under the gtest temp root.
std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("lacc-durable-" + tag + "-" + std::to_string(counter++));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

durable::Options durable_opts(const std::string& dir, bool always_compact) {
  durable::Options o;
  o.dir = dir;
  // Tiny blocks force multi-block run files; fanout 2 makes level merges
  // cascade within a handful of epochs.
  o.block_entries = 64;
  o.cache_blocks = 8;
  o.level_fanout = 2;
  (void)always_compact;
  return o;
}

StreamOptions stream_opts(const std::string& dir, bool always_compact) {
  StreamOptions o;
  o.durable = durable_opts(dir, always_compact);
  // 0 compacts on every epoch with delta entries; a huge factor never
  // compacts, so every run stays in the WAL/delta tier.
  o.compaction_factor = always_compact ? 0.0 : 1e18;
  return o;
}

std::vector<VertexId> truth_labels(const graph::EdgeList& el) {
  return core::normalize_labels(baselines::union_find_cc(el).parent);
}

/// Per-vertex diff dumped for CI artifacts when labels mismatch.
void dump_digest(const std::string& tag, const std::vector<VertexId>& want,
                 const std::vector<VertexId>& got) {
  const char* dir = std::getenv("LACC_DURABLE_DIGEST_DIR");
  if (dir == nullptr) return;
  fs::create_directories(dir);
  std::ofstream out(fs::path(dir) / (tag + ".diff"));
  out << "# vertex want got\n";
  for (std::size_t v = 0; v < want.size() && v < got.size(); ++v)
    if (want[v] != got[v]) out << v << " " << want[v] << " " << got[v] << "\n";
  if (want.size() != got.size())
    out << "# size mismatch: want " << want.size() << " got " << got.size()
        << "\n";
}

::testing::AssertionResult labels_equal(const std::string& tag,
                                        const std::vector<VertexId>& want,
                                        const std::vector<VertexId>& got) {
  if (want == got) return ::testing::AssertionSuccess();
  dump_digest(tag, want, got);
  return ::testing::AssertionFailure()
         << tag << ": recovered labels differ from golden (diff dumped to "
            "$LACC_DURABLE_DIGEST_DIR when set)";
}

/// Split an edge list into `parts` round-robin batches.
std::vector<graph::EdgeList> split_batches(const graph::EdgeList& el,
                                           std::size_t parts) {
  std::vector<graph::EdgeList> out(parts, graph::EdgeList(el.n));
  for (std::size_t k = 0; k < el.edges.size(); ++k)
    out[k % parts].edges.push_back(el.edges[k]);
  return out;
}

// --- unit round-trips ------------------------------------------------------

std::vector<CscCoord> some_coords(std::size_t count, std::uint64_t seed) {
  std::vector<CscCoord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto x = static_cast<VertexId>((i * 2654435761u + seed) % 997);
    out.push_back({x, static_cast<VertexId>((x * 31 + i) % 997)});
  }
  sort_unique_column_major(out, 997);
  return out;
}

TEST(DurableWal, AppendReadRoundTripAndTornTail) {
  const std::string dir = fresh_dir("wal");
  const std::string path = dir + "/gen1-r0.wal";
  durable::Counters counters;
  {
    durable::WalWriter w(path, durable::FsyncPolicy::kPerBatch, &counters);
    w.append(1, some_coords(10, 1));
    w.append(2, some_coords(100, 2));
    w.append(3, {});  // empty runs are legal records
  }
  EXPECT_EQ(counters.wal_records, 3u);
  EXPECT_EQ(counters.fsyncs, 3u);

  bool torn = true;
  auto records = durable::read_wal(path, &torn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(torn);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].coords, some_coords(10, 1));
  EXPECT_EQ(records[1].coords, some_coords(100, 2));
  EXPECT_TRUE(records[2].coords.empty());

  // Chop into the last record's payload: the tail is discarded, earlier
  // records survive, and the torn flag reports the partial record.
  fs::resize_file(path, fs::file_size(path) - 6);
  records = durable::read_wal(path, &torn);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(torn);

  // A missing file reads as an empty log (a rank that never ingested).
  EXPECT_TRUE(durable::read_wal(dir + "/absent.wal", &torn).empty());
  EXPECT_FALSE(torn);
}

TEST(DurableRunFile, RoundTripMultiBlockAndCorruptionDetected) {
  const std::string dir = fresh_dir("run");
  const std::string path = dir + "/L0-1-r0.run";
  const auto coords = some_coords(300, 7);  // > 1 block at 64 entries/block
  durable::Counters counters;
  durable::write_run_file(path, coords, 64, &counters);
  EXPECT_EQ(counters.run_files_written, 1u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // tmp was renamed into place

  durable::BlockCache cache(8, &counters);
  {
    durable::RunFileReader reader(path, 1, &cache);
    EXPECT_EQ(reader.entries(), coords.size());
    EXPECT_GT(reader.block_count(), 1u);
    std::vector<CscCoord> out;
    reader.read_all(out);
    EXPECT_EQ(out, coords);
    // Second read comes from the cache.
    const auto misses = counters.cache_misses;
    out.clear();
    reader.read_all(out);
    EXPECT_EQ(out, coords);
    EXPECT_EQ(counters.cache_misses, misses);
    EXPECT_GT(counters.cache_hits, 0u);
  }

  // Flip one payload byte: the block CRC catches it at read time.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(40);
    f.write(&b, 1);
  }
  durable::BlockCache cold(8, &counters);
  try {
    durable::RunFileReader reader(path, 2, &cold);
    std::vector<CscCoord> out;
    reader.read_all(out);
    FAIL() << "corrupt block went undetected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos);
  }

  // Truncating the footer is caught at open.
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(durable::RunFileReader(path, 3, &cold), Error);
}

TEST(DurableManifest, SaveLoadRoundTripAndCorruptionDetected) {
  const std::string dir = fresh_dir("manifest");
  durable::Manifest m;
  m.n = 1234;
  m.nranks = 4;
  m.epoch = 17;
  m.wal_gen = 3;
  m.wal_processed_seq = 42;
  m.wal_base_seq = 40;
  m.next_file_seq = 9;
  m.levels = {{7, 8}, {5}};
  durable::save_manifest(dir, m);

  durable::Manifest r;
  ASSERT_TRUE(durable::load_manifest(dir, r));
  EXPECT_EQ(r.n, m.n);
  EXPECT_EQ(r.nranks, m.nranks);
  EXPECT_EQ(r.epoch, m.epoch);
  EXPECT_EQ(r.wal_gen, m.wal_gen);
  EXPECT_EQ(r.wal_processed_seq, m.wal_processed_seq);
  EXPECT_EQ(r.wal_base_seq, m.wal_base_seq);
  EXPECT_EQ(r.next_file_seq, m.next_file_seq);
  EXPECT_EQ(r.levels, m.levels);

  EXPECT_FALSE(durable::load_manifest(fresh_dir("manifest-absent"), r));

  // Flip a byte: the trailing CRC line rejects the file.
  const std::string path = dir + "/MANIFEST";
  {
    std::fstream f(path, std::ios::in | std::ios::out);
    f.seekp(20);
    f.write("X", 1);
  }
  EXPECT_THROW(durable::load_manifest(dir, r), Error);
}

// --- engine round trips ----------------------------------------------------

TEST(DurableEngine, DurableRunIsBitIdenticalToMemoryRun) {
  const auto el = graph::clustered_components(90, 6, 3.0, /*seed=*/21);
  const auto batches = split_batches(el, 3);
  for (const bool compact : {false, true}) {
    StreamEngine mem(el.n, 4, sim::MachineModel::local(),
                     [&] {
                       StreamOptions o;
                       o.compaction_factor = compact ? 0.0 : 1e18;
                       return o;
                     }());
    StreamEngine dur(el.n, 4, sim::MachineModel::local(),
                     stream_opts(fresh_dir("parity"), compact));
    for (const auto& b : batches) {
      mem.ingest(b);
      dur.ingest(b);
      const auto sm = mem.advance_epoch();
      const auto sd = dur.advance_epoch();
      // Durability adds host-side disk I/O only: labels, stats, and the
      // modeled clock are bit-identical with and without it.
      EXPECT_EQ(mem.labels(), dur.labels());
      EXPECT_EQ(sm.modeled_seconds(), sd.modeled_seconds());
      EXPECT_EQ(sm.components, sd.components);
      EXPECT_EQ(sm.compacted, sd.compacted);
    }
    EXPECT_FALSE(dur.recovered());
    const auto ds = dur.durability_stats();
    EXPECT_GT(ds.io.wal_records, 0u);
    if (compact) {
      EXPECT_GT(ds.io.run_files_written, 0u);
    }
  }
}

TEST(DurableEngine, RestartRecoversPublishedEpochAndContinues) {
  const auto el = graph::erdos_renyi(80, 200, /*seed=*/13);
  const auto batches = split_batches(el, 3);
  const std::string dir = fresh_dir("restart");

  std::vector<VertexId> golden;
  {
    StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                        stream_opts(dir, /*always_compact=*/true));
    engine.ingest(batches[0]);
    engine.advance_epoch();
    engine.ingest(batches[1]);
    engine.advance_epoch();
    golden = engine.labels();
  }

  StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                      stream_opts(dir, /*always_compact=*/true));
  EXPECT_TRUE(engine.durable());
  EXPECT_TRUE(engine.recovered());
  EXPECT_EQ(engine.recovered_epoch(), 2u);
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_TRUE(labels_equal("restart", golden, engine.labels()));
  const auto ds = engine.durability_stats();
  EXPECT_TRUE(ds.recovered);
  EXPECT_EQ(ds.recovered_epoch, 2u);
  EXPECT_GT(ds.recovery_seconds, 0.0);

  // History before the recovered epoch is gone; query_at says so clearly.
  try {
    const std::vector<VertexId> vs = {0};
    engine.query_at(1, vs);
    FAIL() << "query_at() before the recovered epoch should throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("predates recovery"),
              std::string::npos);
  }
  // At and after the recovered epoch it serves normally.
  const std::vector<VertexId> all = [&] {
    std::vector<VertexId> v(el.n);
    for (VertexId i = 0; i < el.n; ++i) v[i] = i;
    return v;
  }();
  EXPECT_EQ(engine.query_at(2, all), golden);

  // The stream resumes: fold in the last batch and match the full truth.
  engine.ingest(batches[2]);
  engine.advance_epoch();
  EXPECT_TRUE(labels_equal("restart-resume", truth_labels(el),
                           engine.labels()));
}

TEST(DurableEngine, PendingWalRecordsReplayAcrossRestart) {
  const auto el = graph::erdos_renyi(60, 150, /*seed=*/3);
  const auto batches = split_batches(el, 2);
  const std::string dir = fresh_dir("pending");
  {
    StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                        stream_opts(dir, false));
    engine.ingest(batches[0]);
    engine.advance_epoch();
    // Ingested but never advanced: durable in the WAL, pending at restart.
    engine.ingest(batches[1]);
  }
  StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                      stream_opts(dir, false));
  EXPECT_TRUE(engine.recovered());
  EXPECT_EQ(engine.recovered_epoch(), 1u);
  EXPECT_GT(engine.durability_stats().replayed_wal_records, 0u);
  // The replayed batch folds in on the next epoch; no re-ingest needed.
  engine.advance_epoch();
  EXPECT_TRUE(labels_equal("pending", truth_labels(el), engine.labels()));
}

TEST(DurableEngine, TornWalTailIsDiscardedNotFatal) {
  const auto el = graph::erdos_renyi(60, 150, /*seed=*/4);
  const auto batches = split_batches(el, 2);
  const std::string dir = fresh_dir("torn");
  std::vector<VertexId> golden;
  {
    StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                        stream_opts(dir, false));
    engine.ingest(batches[0]);
    engine.advance_epoch();
    golden = engine.labels();
    engine.ingest(batches[1]);  // pending record on every rank
  }
  // Tear rank 2's tail: its copy of the pending record is now partial, so
  // the replay limit drops the record on every rank (it was never part of a
  // published epoch) and recovery still succeeds.
  const std::string wal = dir + "/wal/gen1-r2.wal";
  ASSERT_TRUE(fs::exists(wal));
  fs::resize_file(wal, fs::file_size(wal) - 9);

  StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                      stream_opts(dir, false));
  EXPECT_TRUE(engine.recovered());
  EXPECT_EQ(engine.recovered_epoch(), 1u);
  EXPECT_TRUE(labels_equal("torn", golden, engine.labels()));
  // The dropped batch really is gone: re-ingesting it reproduces the truth.
  engine.ingest(batches[1]);
  engine.advance_epoch();
  EXPECT_TRUE(labels_equal("torn-resume", truth_labels(el), engine.labels()));
}

TEST(DurableEngine, MismatchedGeometryIsRefused) {
  const std::string dir = fresh_dir("geometry");
  {
    StreamEngine engine(40, 4, sim::MachineModel::local(),
                        stream_opts(dir, false));
  }
  try {
    StreamEngine engine(41, 4, sim::MachineModel::local(),
                        stream_opts(dir, false));
    FAIL() << "vertex-count mismatch should be refused";
  } catch (const Error&) {
  }
  try {
    StreamEngine engine(40, 9, sim::MachineModel::local(),
                        stream_opts(dir, false));
    FAIL() << "rank-count mismatch should be refused";
  } catch (const Error&) {
  }
}

TEST(DurableEngine, EmptyBatchWritesNoWalRecord) {
  const std::string dir = fresh_dir("emptybatch");
  StreamEngine engine(30, 4, sim::MachineModel::local(),
                      stream_opts(dir, false));
  const auto st = engine.ingest(graph::EdgeList(30));
  EXPECT_EQ(st.kept, 0u);
  const auto es = engine.advance_epoch();
  EXPECT_EQ(es.batch_edges, 0u);
  EXPECT_EQ(es.ingest_modeled_seconds, 0.0);
  EXPECT_EQ(engine.durability_stats().io.wal_records, 0u);
}

TEST(DurableEngine, LevelCompactionCascadesAndSurvivesRestart) {
  const auto el = graph::erdos_renyi(120, 420, /*seed=*/29);
  const auto batches = split_batches(el, 6);
  const std::string dir = fresh_dir("levels");
  std::vector<VertexId> golden;
  {
    StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                        stream_opts(dir, /*always_compact=*/true));
    for (const auto& b : batches) {
      engine.ingest(b);
      engine.advance_epoch();
    }
    golden = engine.labels();
    const auto ds = engine.durability_stats();
    // Six compacted epochs at fanout 2 must cascade at least once, and the
    // live set stays bounded (leveling, not an append-only run list).
    EXPECT_GT(ds.io.level_compactions, 0u);
    EXPECT_LT(ds.run_files_live, 6u * 4u);
  }
  StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                      stream_opts(dir, /*always_compact=*/true));
  EXPECT_TRUE(engine.recovered());
  EXPECT_TRUE(labels_equal("levels", golden, engine.labels()));
  EXPECT_TRUE(labels_equal("levels-truth", truth_labels(el),
                           engine.labels()));
}

// --- fail-point error mode -------------------------------------------------

TEST(DurableFailPoints, ErrorModeSurfacesCleanError) {
  const auto el = graph::erdos_renyi(50, 120, /*seed=*/8);
  for (const char* site : {"wal.append.write", "manifest.write"}) {
    const std::string dir = fresh_dir("enospc");
    StreamEngine engine(el.n, 4, sim::MachineModel::local(),
                        stream_opts(dir, false));
    durable::FailPoints::arm(site, durable::FailMode::kError);
    try {
      engine.ingest(el);
      engine.advance_epoch();
      FAIL() << "armed kError site " << site << " did not surface";
    } catch (const durable::CrashError&) {
      durable::FailPoints::clear();
      FAIL() << "kError site " << site << " threw CrashError";
    } catch (const Error& e) {
      // The simulated ENOSPC reads like a real one: operation, path, site.
      EXPECT_NE(std::string(e.what()).find("durable I/O error"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(site), std::string::npos)
          << e.what();
    }
    durable::FailPoints::clear();
  }
}

// --- the kill-and-recover matrix -------------------------------------------

struct MatrixOutcome {
  bool fired = false;
  std::uint64_t committed_epoch = 0;
};

/// Run the pre-crash schedule: two committed epochs, then a third
/// ingest+advance with `site` armed to crash.  Returns what happened and
/// fills `golden` with the labels at every committed epoch.
MatrixOutcome run_until_crash(const graph::EdgeList& el,
                              const std::vector<graph::EdgeList>& batches,
                              const std::string& dir, int ranks, bool compact,
                              const std::string& site,
                              std::map<std::uint64_t,
                                       std::vector<VertexId>>& golden) {
  MatrixOutcome out;
  StreamEngine engine(el.n, ranks, sim::MachineModel::local(),
                      stream_opts(dir, compact));
  engine.ingest(batches[0]);
  engine.advance_epoch();
  golden[1] = engine.labels();
  engine.ingest(batches[1]);
  engine.advance_epoch();
  golden[2] = engine.labels();

  durable::FailPoints::arm(site, durable::FailMode::kCrash);
  try {
    engine.ingest(batches[2]);
    engine.advance_epoch();
    golden[3] = engine.labels();
    out.committed_epoch = 3;
  } catch (const durable::CrashError&) {
    out.fired = true;
  }
  durable::FailPoints::clear();
  return out;
}

TEST(DurableKillRecover, EveryWriteSiteEveryRankCount) {
  const auto el = graph::erdos_renyi(60, 160, /*seed=*/17);
  const auto batches = split_batches(el, 3);
  const auto truth = truth_labels(el);

  std::size_t fired_total = 0;
  for (const int ranks : {1, 4, 9}) {
    for (const bool compact : {false, true}) {
      for (const std::string& site : durable::fail_sites()) {
        const std::string tag = site + "-r" + std::to_string(ranks) +
                                (compact ? "-compact" : "-nocompact");
        SCOPED_TRACE(tag);
        const std::string dir = fresh_dir(tag);

        std::map<std::uint64_t, std::vector<VertexId>> golden;
        const MatrixOutcome out =
            run_until_crash(el, batches, dir, ranks, compact, site, golden);
        // A site that never fires in this configuration (e.g. run-file
        // sites with compaction off) still exercises plain recovery.
        fired_total += out.fired ? 1 : 0;

        StreamEngine recovered(el.n, ranks, sim::MachineModel::local(),
                               stream_opts(dir, compact));
        ASSERT_TRUE(recovered.recovered());
        const std::uint64_t at = recovered.recovered_epoch();
        // Whatever the crash interrupted, recovery lands on a *committed*
        // epoch — at least the last one known to have committed.
        ASSERT_GE(at, out.fired ? 2u : out.committed_epoch);
        ASSERT_TRUE(golden.count(at) != 0u)
            << "recovered epoch " << at << " was never committed";
        EXPECT_TRUE(labels_equal(tag, golden.at(at), recovered.labels()));

        // Resume: replaying the full stream must reach the global truth no
        // matter which prefix (and which pending WAL records) survived.
        recovered.ingest(el);
        recovered.advance_epoch();
        EXPECT_TRUE(labels_equal(tag + "-resume", truth,
                                 recovered.labels()));
      }
    }
  }
  // The matrix is only a proof if the crashes actually happened: every site
  // fires in at least one configuration, and most fire in many.
  EXPECT_GE(fired_total, durable::fail_sites().size());
}

}  // namespace
}  // namespace lacc::stream
