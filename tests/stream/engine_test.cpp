// StreamEngine unit tests: epoch bookkeeping, versioned queries, the
// incremental/full-rebuild policy, compaction, and error handling.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "core/options.hpp"
#include "graph/generators.hpp"
#include "stream/engine.hpp"
#include "support/error.hpp"

namespace lacc::stream {
namespace {

graph::EdgeList single_edge(VertexId n, VertexId u, VertexId v) {
  graph::EdgeList el(n);
  el.add(u, v);
  return el;
}

TEST(StreamEngine, StartsWithSingletonComponents) {
  StreamEngine engine(10, 4, sim::MachineModel::local());
  EXPECT_EQ(engine.epoch(), 0u);
  EXPECT_EQ(engine.num_components(), 10u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(engine.component_of(v), v);
}

TEST(StreamEngine, MergesAcrossEpochsAndVersionsQueries) {
  StreamEngine engine(8, 4, sim::MachineModel::local());

  engine.ingest(single_edge(8, 0, 1));
  const auto e1 = engine.advance_epoch();
  EXPECT_EQ(e1.epoch, 1u);
  EXPECT_EQ(e1.cross_edges, 1u);
  EXPECT_EQ(e1.merges, 1u);
  EXPECT_EQ(engine.num_components(), 7u);
  EXPECT_EQ(engine.component_of(1), 0u);

  engine.ingest(single_edge(8, 2, 3));
  const auto e2 = engine.advance_epoch();
  EXPECT_EQ(e2.components, 6u);
  EXPECT_EQ(engine.component_of(3), 2u);

  // Bridge the two pairs: labels collapse onto the minimum vertex id.
  engine.ingest(single_edge(8, 1, 2));
  engine.advance_epoch();
  EXPECT_EQ(engine.num_components(), 5u);
  for (const VertexId v : {0u, 1u, 2u, 3u}) EXPECT_EQ(engine.component_of(v), 0u);

  // Time travel: the epoch-versioned view reproduces every snapshot.
  const std::array<VertexId, 4> vs = {0, 1, 2, 3};
  EXPECT_EQ(engine.query_at(0, vs), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(engine.query_at(1, vs), (std::vector<VertexId>{0, 0, 2, 3}));
  EXPECT_EQ(engine.query_at(2, vs), (std::vector<VertexId>{0, 0, 2, 2}));
  EXPECT_EQ(engine.query_at(3, vs), (std::vector<VertexId>{0, 0, 0, 0}));
  EXPECT_EQ(engine.query(vs), engine.query_at(3, vs));
}

TEST(StreamEngine, EmptyEpochChangesNothing) {
  StreamEngine engine(6, 1, sim::MachineModel::local());
  engine.ingest(single_edge(6, 4, 5));
  engine.advance_epoch();
  const auto labels = engine.labels();
  const auto st = engine.advance_epoch();
  EXPECT_EQ(st.cross_edges, 0u);
  EXPECT_EQ(st.merges, 0u);
  EXPECT_EQ(st.relabeled_vertices, 0u);
  EXPECT_FALSE(st.full_rebuild);
  EXPECT_EQ(engine.labels(), labels);
}

TEST(StreamEngine, DuplicateAndInternalEdgesAreFiltered) {
  StreamEngine engine(8, 4, sim::MachineModel::local());
  engine.ingest(single_edge(8, 0, 1));
  engine.advance_epoch();
  // Re-inserting the same edge (plus a self-loop) crosses nothing.
  graph::EdgeList batch(8);
  batch.add(1, 0);
  batch.add(3, 3);
  const auto stats = engine.ingest(batch);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.kept, 1u);
  const auto st = engine.advance_epoch();
  EXPECT_EQ(st.cross_edges, 0u);
  EXPECT_EQ(st.merges, 0u);
}

TEST(StreamEngine, ZeroThresholdForcesFullRebuild) {
  StreamOptions options;
  options.rebuild_threshold = 0.0;
  StreamEngine engine(40, 4, sim::MachineModel::local(), options);
  const auto el = graph::clustered_components(40, 5, 3.0, /*seed=*/2);
  engine.ingest(el);
  const auto st = engine.advance_epoch();
  ASSERT_GT(st.cross_edges, 0u);
  EXPECT_TRUE(st.full_rebuild);
  EXPECT_TRUE(st.compacted);  // the rebuild path compacts first

  const auto truth = baselines::union_find_cc(el);
  EXPECT_EQ(engine.labels(), core::normalize_labels(truth.parent));
}

TEST(StreamEngine, CompactionPolicyControlsDeltaResidency) {
  // A huge factor keeps the delta resident across incremental epochs; a
  // zero factor folds it into the base every epoch.
  for (const double factor : {1e9, 0.0}) {
    StreamOptions options;
    options.compaction_factor = factor;
    options.rebuild_threshold = 1.0;  // never rebuild
    StreamEngine engine(30, 1, sim::MachineModel::local(), options);
    engine.ingest(single_edge(30, 0, 1));
    const auto st = engine.advance_epoch();
    EXPECT_FALSE(st.full_rebuild);
    if (factor == 0.0) {
      EXPECT_TRUE(st.compacted);
      EXPECT_EQ(st.delta_nnz, 0u);
    } else {
      EXPECT_FALSE(st.compacted);
      EXPECT_EQ(st.delta_nnz, 2u);  // the symmetrized pair stays in the runs
    }
  }
}

TEST(StreamEngine, IncrementalLabelsBitIdenticalToFromScratchLacc) {
  const VertexId n = 120;
  StreamEngine engine(n, 4, sim::MachineModel::local());
  graph::EdgeList accumulated(n);
  const auto full = graph::clustered_components(n, 8, 4.0, /*seed=*/9);
  const std::size_t batch = 1 + full.edges.size() / 5;
  for (std::size_t at = 0; at < full.edges.size(); at += batch) {
    graph::EdgeList slice(n);
    for (std::size_t k = at; k < std::min(at + batch, full.edges.size()); ++k) {
      slice.edges.push_back(full.edges[k]);
      accumulated.edges.push_back(full.edges[k]);
    }
    engine.ingest(slice);
    engine.advance_epoch();
    const auto scratch =
        core::lacc_dist(accumulated, 4, sim::MachineModel::local());
    EXPECT_EQ(engine.labels(), core::normalize_labels(scratch.cc.parent));
  }
  EXPECT_GT(engine.total_modeled_seconds(), 0.0);
  EXPECT_EQ(engine.history().size(), engine.epoch());
}

TEST(StreamEngine, ModeledSecondsAccumulateAndStatsExposed) {
  StreamEngine engine(20, 4, sim::MachineModel::local());
  engine.ingest(single_edge(20, 3, 9));
  const auto st = engine.advance_epoch();
  EXPECT_GT(st.ingest_modeled_seconds, 0.0);
  EXPECT_GT(st.advance_modeled_seconds, 0.0);
  EXPECT_DOUBLE_EQ(engine.total_modeled_seconds(), st.modeled_seconds());
  EXPECT_EQ(engine.last_epoch_spmd().stats.size(), 4u);
}

TEST(StreamEngine, RejectsBadArguments) {
  EXPECT_THROW(StreamEngine(10, 6, sim::MachineModel::local()), Error);
  StreamEngine engine(10, 4, sim::MachineModel::local());
  EXPECT_THROW(engine.ingest(single_edge(11, 0, 1)), Error);
  const std::array<VertexId, 1> v = {0};
  EXPECT_THROW(engine.query_at(1, v), Error);
  EXPECT_THROW(engine.component_of(10), Error);
}

TEST(StreamEngine, QueriesBeforeFirstAdvanceSeeTheEmptyGraph) {
  // Regression: querying epoch 0 before any advance_epoch must answer (every
  // vertex its own component), not assert.
  StreamEngine engine(5, 1, sim::MachineModel::local());
  const std::array<VertexId, 3> vs = {0, 2, 4};
  EXPECT_EQ(engine.query(vs), (std::vector<VertexId>{0, 2, 4}));
  EXPECT_EQ(engine.query_at(0, vs), (std::vector<VertexId>{0, 2, 4}));
  EXPECT_EQ(engine.component_of(4), 4u);
}

TEST(StreamEngine, QueryErrorsAreCleanUserMessages) {
  // Regression: query errors must read as input diagnostics the CLI can
  // print verbatim, not as LACC_CHECK invariant failures.
  StreamEngine engine(10, 1, sim::MachineModel::local());
  const std::array<VertexId, 1> vs = {0};
  try {
    engine.query_at(3, vs);
    FAIL() << "future epoch accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("epoch 3 has not happened yet"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("LACC_CHECK"), std::string::npos) << what;
  }
  try {
    engine.component_of(10);
    FAIL() << "out-of-range vertex accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("vertex 10 out of range [0, 10)"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("LACC_CHECK"), std::string::npos) << what;
  }
  const std::array<VertexId, 1> bad = {10};
  EXPECT_THROW(engine.query_at(0, bad), Error);
  EXPECT_THROW(engine.query(bad), Error);
}

}  // namespace
}  // namespace lacc::stream
