// Property-based validation of the streaming engine: after every randomized
// batch, the incremental labels must match serial_cc and union-find on the
// accumulated graph — across 1/4/9 ranks — and must be bit-identical to
// normalize_labels of a from-scratch lacc_dist run for every LaccOptions
// flag combination (the same 8-combo sweep as the golden determinism test).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/serial_cc.hpp"
#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "stream/engine.hpp"
#include "support/rng.hpp"

namespace lacc::stream {
namespace {

struct Workload {
  std::string family;
  std::uint64_t seed;
  int ranks;

  graph::EdgeList build() const {
    const VertexId n = 300 + 41 * (seed % 7);
    if (family == "er") return graph::erdos_renyi(n, 2 * n, seed);
    if (family == "clustered")
      return graph::clustered_components(n, 12 + seed % 5, 4.0, seed);
    if (family == "forest") return graph::path_forest(n, 7 + seed % 5, seed);
    throw Error("unknown family " + family);
  }
};

/// Split an edge list into randomized batches (deterministic shuffle).
std::vector<graph::EdgeList> random_batches(const graph::EdgeList& el,
                                            std::size_t parts,
                                            std::uint64_t seed) {
  auto edges = el.edges;
  Xoshiro256 rng(seed);
  for (std::size_t i = edges.size(); i > 1; --i)
    std::swap(edges[i - 1], edges[rng.below(i)]);
  std::vector<graph::EdgeList> out(parts, graph::EdgeList(el.n));
  for (std::size_t k = 0; k < edges.size(); ++k)
    out[k % parts].edges.push_back(edges[k]);
  return out;
}

class StreamProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(StreamProperty, EveryEpochMatchesSerialCcAndUnionFind) {
  const Workload& w = GetParam();
  const auto full = w.build();
  const auto batches = random_batches(full, 5, w.seed + 99);

  StreamEngine engine(full.n, w.ranks, sim::MachineModel::local());
  graph::EdgeList accumulated(full.n);
  for (const auto& batch : batches) {
    accumulated.edges.insert(accumulated.edges.end(), batch.edges.begin(),
                             batch.edges.end());
    engine.ingest(batch);
    engine.advance_epoch();

    const auto truth = baselines::union_find_cc(accumulated);
    ASSERT_EQ(engine.labels(), core::normalize_labels(truth.parent));
    const auto serial = baselines::bfs_cc(graph::Csr(accumulated));
    ASSERT_TRUE(core::same_partition(engine.labels(), serial.parent));
    ASSERT_EQ(engine.num_components(),
              core::count_components(truth.parent));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndFamilies, StreamProperty,
    ::testing::Values(Workload{"er", 1, 1}, Workload{"er", 2, 4},
                      Workload{"er", 3, 9}, Workload{"clustered", 4, 1},
                      Workload{"clustered", 5, 4}, Workload{"clustered", 6, 9},
                      Workload{"forest", 7, 4}, Workload{"forest", 8, 9}),
    [](const ::testing::TestParamInfo<Workload>& info) {
      return info.param.family + "_s" + std::to_string(info.param.seed) +
             "_r" + std::to_string(info.param.ranks);
    });

/// All 8 LaccOptions flag combos of the golden determinism sweep: the
/// engine's labels must be bit-identical to a from-scratch lacc_dist run on
/// the accumulated graph at every epoch, under every combo.
TEST(StreamOptionSweep, AllFlagCombosBitIdenticalToFromScratchLacc) {
  const auto full = graph::clustered_components(260, 10, 4.0, /*seed=*/17);
  const auto batches = random_batches(full, 4, /*seed=*/23);
  for (const bool sparse : {false, true}) {
    for (const bool hypercube : {false, true}) {
      for (const bool cyclic : {false, true}) {
        StreamOptions options;
        options.lacc.use_sparse_vectors = sparse;
        options.lacc.sparse_uncond_hooking = sparse;
        options.lacc.hypercube_alltoall = hypercube;
        options.lacc.cyclic_vectors = cyclic;
        // Middle threshold: this workload exercises both the incremental
        // and the full-rebuild path across the batch sequence.
        options.rebuild_threshold = 0.3;

        StreamEngine engine(full.n, 4, sim::MachineModel::local(), options);
        graph::EdgeList accumulated(full.n);
        bool saw_incremental = false, saw_rebuild = false;
        for (const auto& batch : batches) {
          accumulated.edges.insert(accumulated.edges.end(),
                                   batch.edges.begin(), batch.edges.end());
          engine.ingest(batch);
          const auto st = engine.advance_epoch();
          (st.full_rebuild ? saw_rebuild : saw_incremental) = true;
          const auto scratch = core::lacc_dist(
              accumulated, 4, sim::MachineModel::local(), options.lacc);
          ASSERT_EQ(engine.labels(),
                    core::normalize_labels(scratch.cc.parent))
              << "sparse=" << sparse << " hypercube=" << hypercube
              << " cyclic=" << cyclic << " epoch=" << engine.epoch();
        }
        EXPECT_TRUE(saw_incremental);
        EXPECT_TRUE(saw_rebuild);
      }
    }
  }
}

/// The rebuild path must honor the sampling pre-pass: forcing a full
/// rebuild every epoch (threshold 0) with `sampling_prepass` on, each
/// epoch's labels must stay bit-identical to a from-scratch prepass-on
/// lacc_dist on the accumulated graph and to union-find truth.
TEST(StreamPrepass, RebuildPathWithPrepassStaysBitIdentical) {
  const auto full = graph::clustered_components(260, 10, 4.0, /*seed=*/17);
  const auto batches = random_batches(full, 4, /*seed=*/29);
  StreamOptions options;
  options.lacc.sampling_prepass = true;
  options.rebuild_threshold = 0.0;  // any cross edge forces the rebuild path

  StreamEngine engine(full.n, 4, sim::MachineModel::local(), options);
  graph::EdgeList accumulated(full.n);
  bool saw_rebuild = false;
  for (const auto& batch : batches) {
    accumulated.edges.insert(accumulated.edges.end(), batch.edges.begin(),
                             batch.edges.end());
    engine.ingest(batch);
    const auto st = engine.advance_epoch();
    saw_rebuild |= st.full_rebuild;

    const auto truth = baselines::union_find_cc(accumulated);
    ASSERT_EQ(engine.labels(), core::normalize_labels(truth.parent))
        << "epoch=" << engine.epoch();
    const auto scratch = core::lacc_dist(accumulated, 4,
                                         sim::MachineModel::local(),
                                         options.lacc);
    EXPECT_TRUE(scratch.cc.prepass.ran);
    ASSERT_EQ(engine.labels(), core::normalize_labels(scratch.cc.parent))
        << "epoch=" << engine.epoch();
  }
  EXPECT_TRUE(saw_rebuild);
}

}  // namespace
}  // namespace lacc::stream
