// WorkspaceArena semantics: buffer clears but keeps capacity, persistent
// keeps contents, and the creation counter only moves on first use (the
// property the steady-state kernel test in tests/dist relies on).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/arena.hpp"

namespace lacc::support {
namespace {

TEST(WorkspaceArena, BufferClearsButKeepsCapacity) {
  WorkspaceArena arena;
  auto& v = arena.buffer<int>("k");
  EXPECT_TRUE(v.empty());
  v.resize(100, 7);
  const int* data = v.data();
  const std::size_t cap = v.capacity();

  auto& again = arena.buffer<int>("k");
  EXPECT_EQ(&again, &v);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(again.capacity(), cap);
  again.resize(100);
  EXPECT_EQ(again.data(), data);  // capacity reuse: no reallocation
}

TEST(WorkspaceArena, PersistentKeepsContents) {
  WorkspaceArena arena;
  auto& v = arena.persistent<std::uint64_t>("acc");
  v.assign(10, 42);
  auto& again = arena.persistent<std::uint64_t>("acc");
  EXPECT_EQ(&again, &v);
  ASSERT_EQ(again.size(), 10u);
  EXPECT_EQ(again[9], 42u);
}

TEST(WorkspaceArena, DistinctKeysAreDistinctBuffers) {
  WorkspaceArena arena;
  auto& a = arena.buffer<int>("a");
  auto& b = arena.buffer<int>("b");
  EXPECT_NE(&a, &b);
}

TEST(WorkspaceArena, CountersTrackCreationsAndAcquisitions) {
  WorkspaceArena arena;
  EXPECT_EQ(arena.creations(), 0u);
  EXPECT_EQ(arena.acquisitions(), 0u);

  arena.buffer<int>("x");
  EXPECT_EQ(arena.creations(), 1u);
  EXPECT_EQ(arena.acquisitions(), 1u);

  // Warm reacquisition: no new creation.
  arena.buffer<int>("x");
  arena.persistent<int>("x");
  EXPECT_EQ(arena.creations(), 1u);
  EXPECT_EQ(arena.acquisitions(), 3u);

  // A type change under the same key is a key collision; the arena
  // recreates rather than hands back a reinterpreted vector.
  arena.buffer<double>("x");
  EXPECT_EQ(arena.creations(), 2u);
}

}  // namespace
}  // namespace lacc::support
