#include "support/bitvector.hpp"

#include <gtest/gtest.h>

namespace lacc {
namespace {

TEST(BitVector, StartsCleared) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.get(i));
}

TEST(BitVector, StartsFilled) {
  BitVector bv(100, true);
  EXPECT_EQ(bv.count(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(bv.get(i));
}

TEST(BitVector, SetAndClearBits) {
  BitVector bv(130);
  bv.set(0);
  bv.set(63);
  bv.set(64);
  bv.set(129);
  EXPECT_EQ(bv.count(), 4u);
  EXPECT_TRUE(bv.get(63));
  EXPECT_TRUE(bv.get(64));
  bv.set(64, false);
  EXPECT_FALSE(bv.get(64));
  EXPECT_EQ(bv.count(), 3u);
}

TEST(BitVector, FillTogglesEverything) {
  BitVector bv(70);
  bv.fill(true);
  EXPECT_EQ(bv.count(), 70u);
  bv.fill(false);
  EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, TailBitsDoNotLeakIntoCount) {
  // 65 bits: the second word is only one bit wide; fill must not set the
  // unused 63 tail bits.
  BitVector bv(65, true);
  EXPECT_EQ(bv.count(), 65u);
}

TEST(BitVector, EqualityComparesSizeAndBits) {
  BitVector a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == BitVector(11));
}

TEST(BitVector, EmptyVector) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.count(), 0u);
}

}  // namespace
}  // namespace lacc
