#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace lacc {
namespace {

TEST(Env, ParsesDoublesIntsAndStrings) {
  ::setenv("LACC_TEST_D", "2.5", 1);
  ::setenv("LACC_TEST_I", "-42", 1);
  ::setenv("LACC_TEST_S", "hello", 1);
  EXPECT_DOUBLE_EQ(env_double("LACC_TEST_D", 1.0), 2.5);
  EXPECT_EQ(env_int("LACC_TEST_I", 7), -42);
  EXPECT_EQ(env_string("LACC_TEST_S", "x"), "hello");
  ::unsetenv("LACC_TEST_D");
  ::unsetenv("LACC_TEST_I");
  ::unsetenv("LACC_TEST_S");
}

TEST(Env, FallsBackOnMissingOrMalformed) {
  ::unsetenv("LACC_TEST_MISSING");
  EXPECT_DOUBLE_EQ(env_double("LACC_TEST_MISSING", 3.5), 3.5);
  EXPECT_EQ(env_int("LACC_TEST_MISSING", 11), 11);
  EXPECT_EQ(env_string("LACC_TEST_MISSING", "fb"), "fb");
  ::setenv("LACC_TEST_BAD", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("LACC_TEST_BAD", 1.5), 1.5);
  EXPECT_EQ(env_int("LACC_TEST_BAD", 9), 9);
  ::setenv("LACC_TEST_EMPTY", "", 1);
  EXPECT_EQ(env_int("LACC_TEST_EMPTY", 4), 4);
  ::unsetenv("LACC_TEST_BAD");
  ::unsetenv("LACC_TEST_EMPTY");
}

TEST(Env, RejectsTrailingGarbage) {
  // "2x" parses a prefix with strtod/strtoll; the setting as a whole is
  // still malformed and must fall back, not silently become 2.
  ::setenv("LACC_TEST_TRAIL", "2x", 1);
  EXPECT_DOUBLE_EQ(env_double("LACC_TEST_TRAIL", 1.5), 1.5);
  EXPECT_EQ(env_int("LACC_TEST_TRAIL", 9), 9);
  ::setenv("LACC_TEST_TRAIL", "3 ranks", 1);
  EXPECT_EQ(env_int("LACC_TEST_TRAIL", 9), 9);
  // env_int does not accept a float spelling.
  ::setenv("LACC_TEST_TRAIL", "2.5", 1);
  EXPECT_EQ(env_int("LACC_TEST_TRAIL", 9), 9);
  ::unsetenv("LACC_TEST_TRAIL");
}

TEST(Env, AcceptsTrailingWhitespace) {
  ::setenv("LACC_TEST_WS", " 2.5 \t", 1);
  EXPECT_DOUBLE_EQ(env_double("LACC_TEST_WS", 1.0), 2.5);
  ::setenv("LACC_TEST_WS", "42 \n", 1);
  EXPECT_EQ(env_int("LACC_TEST_WS", 7), 42);
  ::unsetenv("LACC_TEST_WS");
}

TEST(Env, RejectsOutOfRangeValues) {
  ::setenv("LACC_TEST_RANGE", "1e999", 1);
  EXPECT_DOUBLE_EQ(env_double("LACC_TEST_RANGE", 2.5), 2.5);
  ::setenv("LACC_TEST_RANGE", "99999999999999999999999999", 1);
  EXPECT_EQ(env_int("LACC_TEST_RANGE", 13), 13);
  ::setenv("LACC_TEST_RANGE", "-99999999999999999999999999", 1);
  EXPECT_EQ(env_int("LACC_TEST_RANGE", 13), 13);
  ::unsetenv("LACC_TEST_RANGE");
}

TEST(ErrorMacros, CheckThrowsWithContext) {
  try {
    LACC_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
  EXPECT_NO_THROW(LACC_CHECK(1 + 1 == 2));
}

TEST(Timer, MeasuresElapsedAndResets) {
  Timer timer;
  const double a = timer.seconds();
  EXPECT_GE(a, 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);  // just reset; generous bound
}

}  // namespace
}  // namespace lacc
