#include "support/partition.hpp"

#include <gtest/gtest.h>

namespace lacc {
namespace {

TEST(BlockPartition, EvenSplit) {
  BlockPartition part(100, 4);
  for (std::uint64_t b = 0; b < 4; ++b) {
    EXPECT_EQ(part.size(b), 25u);
    EXPECT_EQ(part.begin(b), b * 25);
  }
  EXPECT_EQ(part.end(3), 100u);
}

TEST(BlockPartition, UnevenSplitFrontLoadsExtras) {
  BlockPartition part(10, 3);  // sizes 4, 3, 3
  EXPECT_EQ(part.size(0), 4u);
  EXPECT_EQ(part.size(1), 3u);
  EXPECT_EQ(part.size(2), 3u);
  EXPECT_EQ(part.begin(0), 0u);
  EXPECT_EQ(part.begin(1), 4u);
  EXPECT_EQ(part.begin(2), 7u);
  EXPECT_EQ(part.end(2), 10u);
}

TEST(BlockPartition, OwnerMatchesRanges) {
  for (std::uint64_t n : {1u, 7u, 64u, 100u, 1000u}) {
    for (std::uint64_t p : {1u, 2u, 3u, 7u, 16u, 100u}) {
      BlockPartition part(n, p);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t b = part.owner(i);
        EXPECT_GE(i, part.begin(b)) << "n=" << n << " p=" << p << " i=" << i;
        EXPECT_LT(i, part.end(b)) << "n=" << n << " p=" << p << " i=" << i;
      }
    }
  }
}

TEST(BlockPartition, MorePartsThanElements) {
  BlockPartition part(3, 8);
  std::uint64_t covered = 0;
  for (std::uint64_t b = 0; b < 8; ++b) covered += part.size(b);
  EXPECT_EQ(covered, 3u);
  EXPECT_EQ(part.owner(0), 0u);
  EXPECT_EQ(part.owner(2), 2u);
}

TEST(BlockPartition, BlocksTileTheRange) {
  BlockPartition part(97, 13);
  std::uint64_t expected_begin = 0;
  for (std::uint64_t b = 0; b < 13; ++b) {
    EXPECT_EQ(part.begin(b), expected_begin);
    expected_begin = part.end(b);
  }
  EXPECT_EQ(expected_begin, 97u);
}

}  // namespace
}  // namespace lacc
