#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lacc {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(HashMix, IsAPureFunction) {
  EXPECT_EQ(hash_mix(42, 7), hash_mix(42, 7));
  EXPECT_NE(hash_mix(42, 7), hash_mix(42, 8));
  EXPECT_NE(hash_mix(42, 7), hash_mix(43, 7));
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Xoshiro256, BelowCoversTheRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

}  // namespace
}  // namespace lacc
