#include "support/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace lacc {
namespace {

TEST(RadixSortPairs, SortsKeysAndCarriesValues) {
  std::vector<std::uint64_t> keys = {5, 1, 4, 1, 3};
  std::vector<int> values = {50, 10, 40, 11, 30};
  radix_sort_pairs(keys, values);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 1, 3, 4, 5}));
  EXPECT_EQ(values, (std::vector<int>{10, 11, 30, 40, 50}));
}

TEST(RadixSortPairs, IsStable) {
  // Equal keys must keep insertion order (values encode original position).
  std::vector<std::uint64_t> keys(500);
  std::vector<std::uint64_t> values(500);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.below(10);
    values[i] = i;
  }
  radix_sort_pairs(keys, values);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LE(keys[i - 1], keys[i]);
    if (keys[i - 1] == keys[i]) {
      ASSERT_LT(values[i - 1], values[i]);
    }
  }
}

TEST(RadixSortPairs, LargeRandomMatchesStdSort) {
  std::vector<std::uint64_t> keys(20000);
  std::vector<std::uint64_t> values(20000);
  Xoshiro256 rng(17);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng();
    values[i] = keys[i] ^ 0xABCDull;
  }
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort_pairs(keys, values);
  EXPECT_EQ(keys, expected);
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(values[i], keys[i] ^ 0xABCDull);
}

TEST(RadixSortPairs, MaxKeyHintLimitsPasses) {
  std::vector<std::uint64_t> keys(1000);
  std::vector<std::uint32_t> values(1000);
  Xoshiro256 rng(8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.below(256);  // single byte of key material
    values[i] = static_cast<std::uint32_t>(i);
  }
  radix_sort_pairs(keys, values, 255);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RadixSortPairs, EmptyAndSingleton) {
  std::vector<std::uint64_t> keys;
  std::vector<int> values;
  radix_sort_pairs(keys, values);
  EXPECT_TRUE(keys.empty());

  keys = {42};
  values = {1};
  radix_sort_pairs(keys, values);
  EXPECT_EQ(keys[0], 42u);
  EXPECT_EQ(values[0], 1);
}

TEST(ExclusivePrefixSum, ComputesOffsetsAndTotal) {
  std::vector<std::uint64_t> v = {3, 0, 2, 5};
  const auto total = exclusive_prefix_sum(v);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 3, 5}));
}

}  // namespace
}  // namespace lacc
