#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace lacc {
namespace {

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(FmtCount, InsertsThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(68480000), "68,480,000");
}

TEST(FmtSeconds, PicksAdaptiveUnits) {
  EXPECT_EQ(fmt_seconds(2.5), "2.500 s");
  EXPECT_EQ(fmt_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(fmt_seconds(2.5e-6), "2.5 us");
}

TEST(FmtRatio, OneDecimal) { EXPECT_EQ(fmt_ratio(5.06), "5.1x"); }

}  // namespace
}  // namespace lacc
