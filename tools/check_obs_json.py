#!/usr/bin/env python3
"""Validate the observability JSON files lacc emits.

Two file formats (docs/OBSERVABILITY.md):

  metrics  lacc-metrics-v1 through -v7, written by `lacc_cli --json`,
           `lacc_stream_cli --json`, `lacc_serve_cli --json`,
           `lacc_shard_cli --json`, `lacc_kernel_cli --json`, and by the
           bench binaries as $LACC_METRICS_OUT/BENCH_<tool>.json.  v2 adds
           an optional per-run "epochs" array (streaming runs); v3 adds an
           optional per-run "serve" scalar block (serving runs, with
           ordered latency quantiles); v4 adds an optional per-run
           "prepass" scalar block (sampling pre-pass attribution); v5 adds
           an optional per-run "durability" scalar block (WAL/run-file
           counters and recovery info for engines with a data directory);
           v6 adds an optional per-run "shard" object (sharded serving:
           reconcile totals plus "per_shard"/"per_replica" arrays keyed by
           strictly increasing "shard"/"replica" ids); v7 adds an optional
           per-run "kernels" array (analytics runs: one scalar block per
           kernel, keyed by a strictly increasing "kernel_id" where
           0 = bfs, 1 = pagerank, 2 = tc).  Older files stay valid.
  trace    Chrome trace-event JSON, written by `lacc_cli --trace-out` and
           `lacc_serve_cli --trace-out` (schema tag lacc-trace-v1 in
           otherData).

Usage:
  check_obs_json.py FILE...                      validate metrics files
  check_obs_json.py --trace FILE...              validate trace files
  check_obs_json.py --trace --require-phases cond-hook,shortcut FILE
                                                 also require span names
  check_obs_json.py --self-test                  run the built-in tests

Exit status 0 when every file validates, 1 otherwise.  CI runs this against
the artifacts of a bench smoke run, so a schema drift (renamed key, NaN
leaking into the output, unbalanced span) fails the build rather than the
first consumer of the files.
"""
from __future__ import annotations

import argparse
import json
import math
import sys

METRICS_SCHEMA = "lacc-metrics-v7"
# Older files remain valid as long as they omit the newer optional blocks:
# "epochs" needs v2+, "serve" needs v3+, "prepass" needs v4+, "durability"
# needs v5+, "shard" needs v6+, "kernels" needs v7.
METRICS_SCHEMAS = {"lacc-metrics-v1", "lacc-metrics-v2", "lacc-metrics-v3",
                   "lacc-metrics-v4", "lacc-metrics-v5", "lacc-metrics-v6",
                   "lacc-metrics-v7"}
EPOCHS_SCHEMAS = {"lacc-metrics-v2", "lacc-metrics-v3", "lacc-metrics-v4",
                  "lacc-metrics-v5", "lacc-metrics-v6", "lacc-metrics-v7"}
SERVE_SCHEMAS = {"lacc-metrics-v3", "lacc-metrics-v4", "lacc-metrics-v5",
                 "lacc-metrics-v6", "lacc-metrics-v7"}
PREPASS_SCHEMAS = {"lacc-metrics-v4", "lacc-metrics-v5", "lacc-metrics-v6",
                   "lacc-metrics-v7"}
DURABILITY_SCHEMAS = {"lacc-metrics-v5", "lacc-metrics-v6",
                      "lacc-metrics-v7"}
SHARD_SCHEMAS = {"lacc-metrics-v6", "lacc-metrics-v7"}
KERNELS_SCHEMAS = {"lacc-metrics-v7"}
# kernel_id values the v7 "kernels" array may carry.
KERNEL_IDS = {0: "bfs", 1: "pagerank", 2: "tc"}
TRACE_SCHEMA = "lacc-trace-v1"

# Every per-phase aggregate entry carries exactly these keys.
PHASE_ENTRY_KEYS = {
    "modeled_max", "modeled_sum", "comm_max", "compute_max", "wall_max",
    "messages_max", "messages_sum", "bytes_max", "bytes_sum",
    "words_max", "words_sum",
}
RUN_KEYS = {
    "name", "ranks", "modeled_seconds", "wall_seconds", "scalars",
    "total", "phases", "counters",
}


class Invalid(Exception):
    """One validation failure, with a path-like context string."""


def _fail(path: str, why: str) -> None:
    raise Invalid(f"{path}: {why}")


def _check_number(path: str, value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {type(value).__name__}")
    if isinstance(value, float) and not math.isfinite(value):
        _fail(path, f"non-finite number {value!r}")


def _check_scalars(path: str, scalars: object) -> None:
    if not isinstance(scalars, dict):
        _fail(path, "scalars must be an object")
    for key, value in scalars.items():
        _check_number(f"{path}.{key}", value)


def _check_phase_entry(path: str, entry: object) -> None:
    if not isinstance(entry, dict):
        _fail(path, "phase entry must be an object")
    missing = PHASE_ENTRY_KEYS - entry.keys()
    extra = entry.keys() - PHASE_ENTRY_KEYS
    if missing:
        _fail(path, f"missing keys {sorted(missing)}")
    if extra:
        _fail(path, f"unknown keys {sorted(extra)}")
    for key, value in entry.items():
        _check_number(f"{path}.{key}", value)
        if value < 0:
            _fail(f"{path}.{key}", f"negative value {value}")
    if entry["modeled_max"] > entry["modeled_sum"] * (1 + 1e-9):
        _fail(path, "modeled_max exceeds modeled_sum")


def _check_epochs(path: str, epochs: object) -> None:
    if not isinstance(epochs, list) or not epochs:
        _fail(path, "epochs must be a non-empty array")
    last_epoch = None
    for i, entry in enumerate(epochs):
        epath = f"{path}[{i}]"
        _check_scalars(epath, entry)
        if "epoch" not in entry:
            _fail(epath, "missing 'epoch' key")
        if last_epoch is not None and entry["epoch"] <= last_epoch:
            _fail(f"{epath}.epoch",
                  f"not strictly increasing ({entry['epoch']} after "
                  f"{last_epoch})")
        last_epoch = entry["epoch"]


def _check_serve(path: str, serve: object) -> None:
    if not isinstance(serve, dict) or not serve:
        _fail(path, "serve must be a non-empty object")
    _check_scalars(path, serve)
    # Latency quantiles, when present, must be correctly ordered.
    for prefix in ("read", "commit"):
        quantiles = [serve.get(f"{prefix}_p{q}_ms") for q in (50, 95, 99)]
        present = [q for q in quantiles if q is not None]
        if present != sorted(present):
            _fail(path, f"{prefix} latency quantiles not ordered: "
                  f"{quantiles}")
    for key in ("throughput_rps", "shed"):
        if key in serve and serve[key] < 0:
            _fail(f"{path}.{key}", f"negative value {serve[key]}")


def _check_prepass(path: str, prepass: object) -> None:
    if not isinstance(prepass, dict) or not prepass:
        _fail(path, "prepass must be a non-empty object")
    _check_scalars(path, prepass)
    # Counts can never be negative; boolean-ish flags are 0/1 numbers.
    for key in ("rounds", "sampled_edges", "skip_edges", "resolved_vertices",
                "modeled_seconds"):
        if key in prepass and prepass[key] < 0:
            _fail(f"{path}.{key}", f"negative value {prepass[key]}")


def _check_durability(path: str, durability: object) -> None:
    if not isinstance(durability, dict) or not durability:
        _fail(path, "durability must be a non-empty object")
    _check_scalars(path, durability)
    # All durability scalars are counts, flags (0/1), or non-negative
    # seconds — nothing here may go negative.
    for key, value in durability.items():
        if value < 0:
            _fail(f"{path}.{key}", f"negative value {value}")
    for key in ("recovered",):
        if key in durability and durability[key] not in (0, 1):
            _fail(f"{path}.{key}", f"expected 0/1 flag, got {durability[key]}")
    # A process that never recovered cannot have replayed WAL records.
    if (durability.get("recovered") == 0 and
            durability.get("replayed_wal_records", 0) > 0):
        _fail(path, "replayed_wal_records nonzero without recovered=1")


def _check_keyed_array(path: str, entries: object, id_key: str) -> None:
    """A per-shard/per-replica array: scalar blocks keyed by a strictly
    increasing integer id, with no negative values (everything in these
    blocks is a count, a latency, or an id)."""
    if not isinstance(entries, list) or not entries:
        _fail(path, "must be a non-empty array")
    last_id = None
    for i, entry in enumerate(entries):
        epath = f"{path}[{i}]"
        _check_scalars(epath, entry)
        if id_key not in entry:
            _fail(epath, f"missing {id_key!r} key")
        if last_id is not None and entry[id_key] <= last_id:
            _fail(f"{epath}.{id_key}",
                  f"not strictly increasing ({entry[id_key]} after "
                  f"{last_id})")
        last_id = entry[id_key]
        for key, value in entry.items():
            if value < 0:
                _fail(f"{epath}.{key}", f"negative value {value}")
        quantiles = [entry.get(f"read_p{q}_ms") for q in (50, 95, 99)]
        present = [q for q in quantiles if q is not None]
        if present != sorted(present):
            _fail(epath, f"read latency quantiles not ordered: {quantiles}")


def _check_kernels(path: str, kernels: object) -> None:
    """The v7 kernels array: per-kernel scalar blocks keyed by a strictly
    increasing "kernel_id" drawn from KERNEL_IDS."""
    _check_keyed_array(path, kernels, "kernel_id")
    for i, entry in enumerate(kernels):
        if entry["kernel_id"] not in KERNEL_IDS:
            _fail(f"{path}[{i}].kernel_id",
                  f"unknown kernel id {entry['kernel_id']!r} "
                  f"(expected one of {sorted(KERNEL_IDS)})")


def _check_shard(path: str, shard: object) -> None:
    """The v6 shard object: {"totals": {...}, "per_shard": [...],
    "per_replica": [...]} with the arrays optional."""
    if not isinstance(shard, dict) or not shard:
        _fail(path, "shard must be a non-empty object")
    extra = shard.keys() - {"totals", "per_shard", "per_replica"}
    if extra:
        _fail(path, f"unknown keys {sorted(extra)}")
    if "totals" not in shard:
        _fail(path, "missing 'totals' key")
    totals = shard["totals"]
    if not isinstance(totals, dict) or not totals:
        _fail(f"{path}.totals", "must be a non-empty object")
    _check_scalars(f"{path}.totals", totals)
    for key, value in totals.items():
        if value < 0:
            _fail(f"{path}.totals.{key}", f"negative value {value}")
    if "per_shard" in shard:
        _check_keyed_array(f"{path}.per_shard", shard["per_shard"], "shard")
    if "per_replica" in shard:
        _check_keyed_array(f"{path}.per_replica", shard["per_replica"],
                           "replica")


def check_metrics(doc: object, path: str = "metrics") -> None:
    """Validate one parsed lacc-metrics-v1/v2 document."""
    if not isinstance(doc, dict):
        _fail(path, "top level must be an object")
    schema = doc.get("schema")
    if schema not in METRICS_SCHEMAS:
        _fail(f"{path}.schema", f"expected one of {sorted(METRICS_SCHEMAS)}, "
              f"got {schema!r}")
    if not isinstance(doc.get("tool"), str) or not doc["tool"]:
        _fail(f"{path}.tool", "must be a non-empty string")
    _check_number(f"{path}.word_bytes", doc.get("word_bytes"))
    _check_scalars(f"{path}.config", doc.get("config"))
    runs = doc.get("runs")
    if not isinstance(runs, list):
        _fail(f"{path}.runs", "must be an array")
    for i, run in enumerate(runs):
        rpath = f"{path}.runs[{i}]"
        if not isinstance(run, dict):
            _fail(rpath, "run must be an object")
        missing = RUN_KEYS - run.keys()
        if missing:
            _fail(rpath, f"missing keys {sorted(missing)}")
        if not isinstance(run["name"], str) or not run["name"]:
            _fail(f"{rpath}.name", "must be a non-empty string")
        _check_number(f"{rpath}.ranks", run["ranks"])
        _check_number(f"{rpath}.modeled_seconds", run["modeled_seconds"])
        _check_number(f"{rpath}.wall_seconds", run["wall_seconds"])
        _check_scalars(f"{rpath}.scalars", run["scalars"])
        if "epochs" in run:
            if schema not in EPOCHS_SCHEMAS:
                _fail(f"{rpath}.epochs", f"only allowed under "
                      f"{sorted(EPOCHS_SCHEMAS)}, file is {schema!r}")
            _check_epochs(f"{rpath}.epochs", run["epochs"])
        if "serve" in run:
            if schema not in SERVE_SCHEMAS:
                _fail(f"{rpath}.serve", f"only allowed under "
                      f"{sorted(SERVE_SCHEMAS)}, file is {schema!r}")
            _check_serve(f"{rpath}.serve", run["serve"])
        if "prepass" in run:
            if schema not in PREPASS_SCHEMAS:
                _fail(f"{rpath}.prepass", f"only allowed under "
                      f"{sorted(PREPASS_SCHEMAS)}, file is {schema!r}")
            _check_prepass(f"{rpath}.prepass", run["prepass"])
        if "durability" in run:
            if schema not in DURABILITY_SCHEMAS:
                _fail(f"{rpath}.durability", f"only allowed under "
                      f"{sorted(DURABILITY_SCHEMAS)}, file is {schema!r}")
            _check_durability(f"{rpath}.durability", run["durability"])
        if "shard" in run:
            if schema not in SHARD_SCHEMAS:
                _fail(f"{rpath}.shard", f"only allowed under "
                      f"{sorted(SHARD_SCHEMAS)}, file is {schema!r}")
            _check_shard(f"{rpath}.shard", run["shard"])
        if "kernels" in run:
            if schema not in KERNELS_SCHEMAS:
                _fail(f"{rpath}.kernels", f"only allowed under "
                      f"{sorted(KERNELS_SCHEMAS)}, file is {schema!r}")
            _check_kernels(f"{rpath}.kernels", run["kernels"])
        _check_phase_entry(f"{rpath}.total", run["total"])
        if not isinstance(run["phases"], dict):
            _fail(f"{rpath}.phases", "must be an object")
        for name, entry in run["phases"].items():
            _check_phase_entry(f"{rpath}.phases[{name}]", entry)
        if not isinstance(run["counters"], dict):
            _fail(f"{rpath}.counters", "must be an object")
        for name, entry in run["counters"].items():
            cpath = f"{rpath}.counters[{name}]"
            if not isinstance(entry, dict) or entry.keys() != {"max", "sum"}:
                _fail(cpath, "counter entry must be {max, sum}")
            for key, value in entry.items():
                _check_number(f"{cpath}.{key}", value)


def check_trace(doc: object, require_phases: list[str] | None = None,
                path: str = "trace") -> None:
    """Validate one parsed Chrome trace-event document from lacc."""
    if not isinstance(doc, dict):
        _fail(path, "top level must be an object")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        _fail(f"{path}.otherData.schema", f"expected {TRACE_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        _fail(f"{path}.traceEvents", "must be a non-empty array")
    ranks = other.get("ranks")
    _check_number(f"{path}.otherData.ranks", ranks)
    names_by_tid: dict[int, set[str]] = {}
    for i, event in enumerate(events):
        epath = f"{path}.traceEvents[{i}]"
        if not isinstance(event, dict):
            _fail(epath, "event must be an object")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            _fail(f"{epath}.ph", f"unexpected phase {ph!r}")
        if ph == "M":
            continue
        for key in ("name", "ts", "dur", "pid", "tid", "cat"):
            if key not in event:
                _fail(epath, f"missing key {key!r}")
        _check_number(f"{epath}.ts", event["ts"])
        _check_number(f"{epath}.dur", event["dur"])
        if event["ts"] < 0 or event["dur"] < 0:
            _fail(epath, "negative timestamp or duration")
        tid = event["tid"]
        if not isinstance(tid, int) or not 0 <= tid < int(ranks):
            _fail(f"{epath}.tid", f"tid {tid!r} outside [0, {ranks})")
        names_by_tid.setdefault(tid, set()).add(event["name"])
    if len(names_by_tid) != int(ranks):
        _fail(f"{path}.traceEvents",
              f"events cover {len(names_by_tid)} ranks, expected {ranks}")
    for name in require_phases or []:
        for tid, names in sorted(names_by_tid.items()):
            if name not in names:
                _fail(f"{path}.traceEvents",
                      f"required span {name!r} missing on rank {tid}")


def _validate_file(filename: str, trace: bool,
                   require_phases: list[str] | None) -> str | None:
    try:
        with open(filename, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return f"{filename}: {err}"
    try:
        if trace:
            check_trace(doc, require_phases)
        else:
            check_metrics(doc)
    except Invalid as err:
        return f"{filename}: {err}"
    return None


# --- self-test -------------------------------------------------------------

def _phase_entry(**overrides: float) -> dict:
    entry = {key: 1.0 for key in PHASE_ENTRY_KEYS}
    entry.update(overrides)
    return entry


def _metrics_doc() -> dict:
    return {
        "schema": METRICS_SCHEMA,
        "tool": "selftest",
        "word_bytes": 8,
        "config": {"scale": 0.25},
        "runs": [{
            "name": "run",
            "ranks": 4,
            "modeled_seconds": 1.5,
            "wall_seconds": 0.1,
            "scalars": {"edges": 10.0},
            "total": _phase_entry(modeled_sum=4.0),
            "phases": {"cond-hook": _phase_entry(modeled_sum=4.0)},
            "counters": {"hooks": {"max": 2, "sum": 5}},
        }],
    }


def _trace_doc() -> dict:
    return {
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "clock": "modeled", "ranks": 2},
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
             "args": {"name": "rank 0"}},
            {"ph": "X", "name": "iter", "cat": "region", "ts": 0.0,
             "dur": 2.0, "pid": 0, "tid": 0, "args": {}},
            {"ph": "X", "name": "iter", "cat": "region", "ts": 0.0,
             "dur": 2.0, "pid": 0, "tid": 1, "args": {}},
        ],
    }


def _expect_ok(doc: object, trace: bool = False, **kwargs) -> None:
    if trace:
        check_trace(doc, **kwargs)
    else:
        check_metrics(doc)


def _expect_invalid(doc: object, trace: bool = False, **kwargs) -> None:
    try:
        _expect_ok(doc, trace, **kwargs)
    except Invalid:
        return
    raise AssertionError(f"validation unexpectedly passed: {doc!r}")


def self_test() -> int:
    _expect_ok(_metrics_doc())

    # Older files stay valid as long as they omit the newer blocks.
    for old in ("lacc-metrics-v1", "lacc-metrics-v2", "lacc-metrics-v3",
                "lacc-metrics-v4", "lacc-metrics-v5", "lacc-metrics-v6"):
        doc = _metrics_doc()
        doc["schema"] = old
        _expect_ok(doc)

    # epochs arrays are v2+; still fine under v3.
    v2 = _metrics_doc()
    v2["schema"] = "lacc-metrics-v2"
    v2["runs"][0]["epochs"] = [{"epoch": 1}]
    _expect_ok(v2)

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v0"
    _expect_invalid(bad)

    ok = _metrics_doc()
    ok["runs"][0]["epochs"] = [{"epoch": 1, "merges": 3.0},
                               {"epoch": 2, "merges": 0.0}]
    _expect_ok(ok)

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v1"
    bad["runs"][0]["epochs"] = [{"epoch": 1}]  # epochs are v2-only
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["epochs"] = []  # must be non-empty when present
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["epochs"] = [{"merges": 3.0}]  # missing "epoch"
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["epochs"] = [{"epoch": 2}, {"epoch": 2}]  # not increasing
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["epochs"] = [{"epoch": 1, "note": "text"}]  # non-number
    _expect_invalid(bad)

    # The v3 serve block: numeric scalars with ordered latency quantiles.
    ok = _metrics_doc()
    ok["runs"][0]["serve"] = {"throughput_rps": 1000.0, "shed": 0,
                              "read_p50_ms": 0.1, "read_p95_ms": 0.5,
                              "read_p99_ms": 2.0, "commit_p50_ms": 5.0,
                              "commit_p99_ms": 40.0}
    _expect_ok(ok)

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v2"
    bad["runs"][0]["serve"] = {"throughput_rps": 1.0}  # serve is v3-only
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["serve"] = {}  # must be non-empty when present
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["serve"] = {"read_p50_ms": 2.0, "read_p99_ms": 0.1}
    _expect_invalid(bad)  # quantiles out of order

    bad = _metrics_doc()
    bad["runs"][0]["serve"] = {"throughput_rps": -5.0}
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["serve"] = {"note": "text"}  # non-number
    _expect_invalid(bad)

    # The v4 prepass block: numeric scalars with non-negative counts.
    ok = _metrics_doc()
    ok["runs"][0]["prepass"] = {"enabled": 1, "rounds": 2,
                                "sampled_edges": 500.0, "skip_edges": 120.0,
                                "resolved_vertices": 900.0,
                                "frequent_found": 1,
                                "modeled_seconds": 0.004}
    _expect_ok(ok)

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v3"
    bad["runs"][0]["prepass"] = {"enabled": 1}  # prepass is v4-only
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["prepass"] = {}  # must be non-empty when present
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["prepass"] = {"sampled_edges": -3.0}
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["prepass"] = {"note": "text"}  # non-number
    _expect_invalid(bad)

    # The v5 durability block: non-negative counters + consistency rules.
    ok = _metrics_doc()
    ok["runs"][0]["durability"] = {"wal_records": 24, "wal_bytes": 8192,
                                   "fsyncs": 30, "run_files_written": 6,
                                   "run_file_bytes": 4096,
                                   "level_compactions": 1, "cache_hits": 12,
                                   "cache_misses": 3, "run_files_live": 4,
                                   "recovered": 1, "recovered_epoch": 5,
                                   "replayed_wal_records": 2,
                                   "recovery_seconds": 0.01}
    _expect_ok(ok)

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v4"
    bad["runs"][0]["durability"] = {"wal_records": 1}  # durability is v5-only
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["durability"] = {}  # must be non-empty when present
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["durability"] = {"fsyncs": -1.0}
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["durability"] = {"recovered": 0.5}  # not a 0/1 flag
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["durability"] = {"recovered": 0,
                                    "replayed_wal_records": 3}
    _expect_invalid(bad)  # replay without recovery

    bad = _metrics_doc()
    bad["runs"][0]["durability"] = {"note": "text"}  # non-number
    _expect_invalid(bad)

    # The v6 shard object: totals + keyed per_shard/per_replica arrays.
    def _shard_block() -> dict:
        return {
            "totals": {"shards": 2, "replicas": 2, "global_epochs": 7,
                       "reconcile_rounds": 9, "boundary_raw_total": 12,
                       "boundary_words_moved": 48, "ticket_waits": 3},
            "per_shard": [
                {"shard": 0, "applied_seq": 40, "boundary_raw": 6},
                {"shard": 1, "applied_seq": 38, "boundary_raw": 6},
            ],
            "per_replica": [
                {"replica": 0, "reads": 500, "read_p50_ms": 0.1,
                 "read_p95_ms": 0.4, "read_p99_ms": 0.9},
                {"replica": 1, "reads": 480, "read_p50_ms": 0.1,
                 "read_p95_ms": 0.5, "read_p99_ms": 1.1},
            ],
        }

    ok = _metrics_doc()
    ok["runs"][0]["shard"] = _shard_block()
    _expect_ok(ok)

    ok = _metrics_doc()
    ok["runs"][0]["shard"] = {"totals": {"shards": 1}}  # arrays optional
    _expect_ok(ok)

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v5"
    bad["runs"][0]["shard"] = _shard_block()  # shard is v6-only
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = {}  # must be non-empty when present
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = {"per_shard": [{"shard": 0}]}  # no totals
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["extras"] = {}  # unknown key
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    del bad["runs"][0]["shard"]["per_shard"][1]["shard"]  # missing id
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["per_shard"][1]["shard"] = 0  # not increasing
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["per_replica"][0]["replica"] = 5
    # per_replica ids must also increase (5 then 1).
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["per_shard"][0]["boundary_raw"] = -1
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["totals"]["ticket_waits"] = -3
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["per_replica"][0]["read_p50_ms"] = 2.0
    _expect_invalid(bad)  # replica read quantiles out of order

    bad = _metrics_doc()
    bad["runs"][0]["shard"] = _shard_block()
    bad["runs"][0]["shard"]["totals"]["note"] = "text"  # non-number
    _expect_invalid(bad)

    # A v6 file carrying its newest block (shard) must keep validating.
    ok = _metrics_doc()
    ok["schema"] = "lacc-metrics-v6"
    ok["runs"][0]["shard"] = _shard_block()
    _expect_ok(ok)

    # The v7 kernels array: per-kernel blocks keyed by kernel_id.
    def _kernels_block() -> list:
        return [
            {"kernel_id": 0, "invocations": 2, "rounds": 11,
             "reached": 4096, "modeled_seconds": 0.012},
            {"kernel_id": 1, "invocations": 1, "rounds": 34,
             "l1_residual": 4.0e-13, "converged": 1,
             "modeled_seconds": 0.08},
            {"kernel_id": 2, "invocations": 1, "triangles": 98765,
             "modeled_seconds": 0.05},
        ]

    ok = _metrics_doc()
    ok["runs"][0]["kernels"] = _kernels_block()
    _expect_ok(ok)

    ok = _metrics_doc()
    ok["runs"][0]["kernels"] = [{"kernel_id": 2, "triangles": 3.0}]
    _expect_ok(ok)  # a single kernel is fine

    bad = _metrics_doc()
    bad["schema"] = "lacc-metrics-v6"
    bad["runs"][0]["kernels"] = _kernels_block()  # kernels is v7-only
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["kernels"] = []  # must be non-empty when present
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["kernels"] = [{"invocations": 1}]  # missing kernel_id
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["kernels"] = _kernels_block()
    bad["runs"][0]["kernels"][1]["kernel_id"] = 0  # not increasing
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["kernels"] = [{"kernel_id": 3}]  # unknown kernel
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["kernels"] = [{"kernel_id": 0, "rounds": -2}]
    _expect_invalid(bad)  # counts never go negative

    bad = _metrics_doc()
    bad["runs"][0]["kernels"] = [{"kernel_id": 0, "note": "text"}]
    _expect_invalid(bad)  # non-number

    bad = _metrics_doc()
    bad["runs"][0]["total"]["modeled_max"] = float("nan")
    _expect_invalid(bad)

    bad = _metrics_doc()
    del bad["runs"][0]["phases"]["cond-hook"]["bytes_sum"]
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["counters"]["hooks"] = {"max": 2}
    _expect_invalid(bad)

    bad = _metrics_doc()
    bad["runs"][0]["total"]["modeled_max"] = 100.0  # max > sum
    _expect_invalid(bad)

    _expect_ok(_trace_doc(), trace=True)
    _expect_ok(_trace_doc(), trace=True, require_phases=["iter"])
    _expect_invalid(_trace_doc(), trace=True, require_phases=["cond-hook"])

    bad = _trace_doc()
    bad["otherData"]["schema"] = "something-else"
    _expect_invalid(bad, trace=True)

    bad = _trace_doc()
    bad["traceEvents"][1]["tid"] = 7  # outside [0, ranks)
    _expect_invalid(bad, trace=True)

    bad = _trace_doc()
    del bad["traceEvents"][2]  # rank 1 has no events
    _expect_invalid(bad, trace=True)

    print("check_obs_json self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="JSON files to validate")
    parser.add_argument("--trace", action="store_true",
                        help="validate Chrome trace files instead of metrics")
    parser.add_argument("--require-phases", default="",
                        help="comma-separated span names every rank must "
                             "have (trace mode)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no files given (or use --self-test)")
    require = [p for p in args.require_phases.split(",") if p]
    if require and not args.trace:
        parser.error("--require-phases only applies with --trace")

    failures = []
    for filename in args.files:
        error = _validate_file(filename, args.trace, require)
        if error:
            failures.append(error)
        else:
            kind = "trace" if args.trace else "metrics"
            print(f"{filename}: valid {kind} file")
    for error in failures:
        print(f"error: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
