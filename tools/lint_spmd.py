#!/usr/bin/env python3
"""SPMD lint pass for the lacc::sim virtual-rank runtime (CI-enforced).

Static rules that complement the runtime conformance checker
(docs/CHECKING.md) by catching malformed SPMD code before it runs:

  rank-conditional-collective
      A collective issued inside an `if`/`while` whose condition depends on
      the caller's rank (rank(), my_row(), my_col(), leader, ...).  Every
      rank must issue every collective; a rank-dependent guard is the static
      signature of the skipped/mismatched collectives the runtime checker
      reports at sync points.  Covers both the comm-level primitives
      (barrier, bcast, alltoallv, ...) and the dist:: free-function
      collectives layered on them (gather_values, scatter_assign_min,
      global_any, to_layout, ... — the ops the sampling pre-pass leans on),
      which synchronize the modeled clock just the same.  Scope: src/ and
      examples/.

  raw-sort
      std::sort / std::stable_sort in the arena-managed kernel hot paths
      and in the streaming delta path.  The kernels sort with the
      allocation-free stable radix helpers in support/sort.hpp; a
      comparator sort allocates (introsort spills) and is not stable —
      and in the delta store an unstable sort would break the sorted-run
      invariant the merge path relies on.  The shard layer's boundary
      compaction and quotient build sort label pairs on the reconcile
      thread with the same helpers (stability is what lets two single-key
      radix passes compose into pair order).  The analytics kernels
      (src/kernel/) sort gathered coordinate sets the same way — triangle
      counting's stage bcast relies on the stable counting sort keeping
      rows ascending within each column.  Scope: src/dist/ops.cpp,
      src/stream/*.cpp, src/shard/*.cpp, and src/kernel/*.cpp.

  heap-alloc-hot-path
      A local std::vector declaration in the arena-managed kernel hot
      paths.  Scratch must come from the per-rank WorkspaceArena so
      steady-state kernel calls allocate nothing.  Scope: src/dist/ops.cpp.

  non-into-collective
      An allocating collective (allgatherv, alltoallv, reduce_scatter_block,
      sendrecv without the _into suffix) in the kernel hot paths, which
      returns a fresh vector per call instead of filling a recycled buffer.
      Scope: src/dist/ops.cpp.

  no-detached-threads
      A `.detach()` call on a thread.  The serving layer introduced real
      concurrency (threads that outlive a scope unless joined); every
      thread in this tree must be joined so shutdown is deterministic and
      TSan observes the complete happens-before graph.  Scope: src/,
      examples/, tests/, bench/.

  implicit-seq-cst
      An atomic member operation (load/store/exchange/fetch_*/
      compare_exchange_*) that does not name a std::memory_order — the
      default is seq_cst, which hides the intended ordering and costs a
      full fence on weakly-ordered targets.  Every atomic op in this tree
      states its ordering so the model checker's shims (src/sched/shim.hpp,
      which have no defaulted order argument) can instantiate the same code
      verbatim, and so each ordering decision is visible at the call site.
      Operator forms (x++, x = v, implicit conversion) are also seq_cst but
      are not detectable textually; the shim's missing operators catch
      those when a structure is instantiated under the checker.
      Scope: src/.

  unchecked-io-call
      A raw POSIX/stdio file mutation (write/pwrite/fwrite/fsync/
      fdatasync/ftruncate/truncate/rename/unlink/close/fclose) whose
      return value is discarded — the call is a whole statement or cast
      to (void).  The durability layer's crash-consistency argument
      (docs/STREAMING.md) depends on every failed write surfacing as a
      clean lacc::Error before the manifest commits; an ignored short
      write or failed fsync silently breaks the recovery invariant.  All
      raw I/O belongs behind stream/durable/io.hpp, which checks every
      return (destructor/cleanup closes carry the allow pragma).
      Scope: src/.

A finding can be suppressed with a pragma on the offending line or the line
above:  // lint-spmd: allow(<rule>)

Usage:
  tools/lint_spmd.py [--root REPO_ROOT]     lint the tree (exit 1 on findings)
  tools/lint_spmd.py --self-test            run the linter's own test suite
"""

import argparse
import pathlib
import re
import sys

COLLECTIVE_RE = re.compile(
    r"[.>]\s*(barrier|bcast|allreduce|allgatherv(?:_into)?|"
    r"alltoallv(?:_into)?|reduce_scatter_block(?:_into)?|"
    r"sendrecv(?:_into)?|split)\s*\("
)
# dist:: free-function collectives (src/dist/ops.hpp) — called without a
# comm object, so the [.>] pattern above never sees them.
DIST_COLLECTIVE_RE = re.compile(
    r"\b(?:dist\s*::\s*)?(gather_values|gather_at|scatter_assign_min|"
    r"scatter_accumulate_min|scatter_set|global_any|global_nvals|"
    r"mxv_select2nd(?:_minmax)?|mxv_plus|to_layout|to_global)\s*\("
)
RANK_TOKEN_RE = re.compile(
    r"\b(rank|rank_|my_rank|my_row|my_col|leader|is_leader|is_root|"
    r"transpose_rank|grid_row|grid_col)\b"
)
COND_RE = re.compile(r"\b(?:if|while)\s*\(")
ALLOW_RE = re.compile(r"lint-spmd:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
NON_INTO_RE = re.compile(
    r"[.>]\s*(allgatherv|alltoallv|reduce_scatter_block|sendrecv)\s*\("
)
RAW_SORT_RE = re.compile(r"\bstd::(?:stable_)?sort\s*\(")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
VEC_DECL_RE = re.compile(r"^\s*(?:const\s+)?std::vector\s*<[^;&]*>\s+\w[^;(]*[;(]")
# Atomic member ops whose trailing std::memory_order argument is mandatory
# in this tree.  `.clear()`/`.test_and_set()` (atomic_flag) are omitted:
# `clear` collides with the containers and atomic_flag is unused here.
ATOMIC_OP_RE = re.compile(
    r"[.>]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
# A raw file-mutating call at statement position (or cast to void): its
# return value is discarded, so a short write / failed fsync goes unnoticed.
# Member calls (f.close(...)) and checked calls (if (::close(fd) != 0),
# const ssize_t n = ::write(...)) do not match.
UNCHECKED_IO_RE = re.compile(
    r"(?:^\s*|\(\s*void\s*\)\s*)(?:::\s*)?"
    r"(write|pwrite|fwrite|fsync|fdatasync|ftruncate|truncate|rename|"
    r"unlink|close|fclose)\s*\("
)


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure so offsets still map to line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif c in "\"'":
                mode = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string/char literal
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == mode:
                mode = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def allowed(lines, lineno, rule):
    """True if an allow-pragma for `rule` sits on `lineno` or the line above."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines):
            m = ALLOW_RE.search(lines[ln - 1])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def matching(code, start, open_ch, close_ch):
    """Offset one past the delimiter matching code[start] (== open_ch)."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def body_extent(code, pos):
    """Extent [begin, end) of the statement or block starting at/after pos."""
    while pos < len(code) and code[pos] in " \t\n":
        pos += 1
    if pos >= len(code):
        return pos, pos
    if code[pos] == "{":
        return pos, matching(code, pos, "{", "}")
    end = code.find(";", pos)
    return pos, (len(code) if end < 0 else end + 1)


def check_rank_conditional(path, text, findings):
    rule = "rank-conditional-collective"
    code = strip_comments_and_strings(text)
    lines = text.splitlines()
    for m in COND_RE.finditer(code):
        open_paren = code.index("(", m.start())
        cond_end = matching(code, open_paren, "(", ")")
        condition = code[open_paren:cond_end]
        if not RANK_TOKEN_RE.search(condition):
            continue
        bodies = [body_extent(code, cond_end)]
        # The else branch of a rank-dependent if is equally rank-dependent.
        tail = code[bodies[0][1]:]
        else_m = re.match(r"\s*else\b(?!\s+if\b)", tail)
        if else_m:
            bodies.append(body_extent(code, bodies[0][1] + else_m.end()))
        for begin, end in bodies:
            for regex in (COLLECTIVE_RE, DIST_COLLECTIVE_RE):
                for cm in regex.finditer(code, begin, end):
                    lineno = line_of(code, cm.start())
                    if allowed(lines, lineno, rule) or allowed(
                        lines, line_of(code, m.start()), rule
                    ):
                        continue
                    findings.append(
                        (path, lineno, rule,
                         f"collective '{cm.group(1)}' under a rank-dependent "
                         f"condition ({condition.strip()[:60]}); every rank "
                         "must issue every collective")
                    )


def check_implicit_seq_cst(path, text, findings):
    """Flag atomic member ops that omit the std::memory_order argument.
    Argument lists are matched with balanced parens (they may span lines)."""
    rule = "implicit-seq-cst"
    code = strip_comments_and_strings(text)
    lines = text.splitlines()
    for m in ATOMIC_OP_RE.finditer(code):
        open_paren = code.index("(", m.end() - 1)
        args = code[open_paren:matching(code, open_paren, "(", ")")]
        if "memory_order" in args:
            continue
        lineno = line_of(code, m.start())
        if allowed(lines, lineno, rule):
            continue
        findings.append(
            (path, lineno, rule,
             f"atomic '{m.group(1)}' without an explicit std::memory_order "
             "(implicit seq_cst); name the ordering at the call site"))


def check_line_rules(path, text, findings, rules):
    code = strip_comments_and_strings(text)
    lines = text.splitlines()
    for lineno, line in enumerate(code.splitlines(), start=1):
        for rule, regex, message in rules:
            m = regex.search(line)
            if m and not allowed(lines, lineno, rule):
                findings.append((path, lineno, rule, message))


HOT_PATH_RULES = [
    ("raw-sort", RAW_SORT_RE,
     "comparator sort in an arena-managed hot path; use the stable radix "
     "helpers in support/sort.hpp"),
    ("heap-alloc-hot-path", VEC_DECL_RE,
     "local std::vector in an arena-managed hot path; acquire scratch from "
     "the WorkspaceArena"),
    ("non-into-collective", NON_INTO_RE,
     "allocating collective in a hot path; use the _into variant with a "
     "recycled buffer"),
]

# The streaming delta path sorts per-epoch runs; the LSM merge relies on
# every run being stably column-major sorted, so a comparator sort (unstable,
# allocating) is banned there too.  The arena/vector rules do not apply:
# stream structures are long-lived per-engine state, not per-call scratch.
STREAM_RULES = [
    ("raw-sort", RAW_SORT_RE,
     "comparator sort in the streaming delta path; runs must be sorted with "
     "the stable radix helpers in support/sort.hpp"),
]

# The shard layer's reconcile path (boundary compaction, quotient build)
# sorts label pairs with two stable single-key radix passes; a comparator
# sort is unstable (breaking the pair-order composition) and allocates on
# the reconcile thread.  As with the stream rules, the vector/arena rules
# do not apply: shard structures are long-lived router state.
SHARD_RULES = [
    ("raw-sort", RAW_SORT_RE,
     "comparator sort in the shard reconcile path; sort with the stable "
     "radix helpers in support/sort.hpp (two stable single-key passes "
     "compose into pair order)"),
]

# The analytics kernels gather and re-sort coordinate sets per query
# (triangle counting's stage columns, view composition's merged deltas);
# a comparator sort is unstable — the stage bcast relies on rows staying
# ascending within each column — and allocates on the query thread.  The
# vector/arena rules do not apply: kernel scratch is per-query, not a
# steady-state hot path.
KERNEL_RULES = [
    ("raw-sort", RAW_SORT_RE,
     "comparator sort in the kernel analytics path; sort with the stable "
     "radix/counting helpers (support/sort.hpp, "
     "stream::sort_unique_column_major) so rows stay ascending per column"),
]

# Tree-wide: a detached thread can never be joined, so shutdown order is
# nondeterministic and TSan loses the happens-before edge at thread exit.
THREAD_RULES = [
    ("no-detached-threads", DETACH_RE,
     "detached thread; join every thread (see src/serve/server.hpp for the "
     "owning-thread pattern) so shutdown is deterministic and TSan sees the "
     "full happens-before graph"),
]

# src/-wide: the durability layer's recovery proof needs every file
# mutation's result checked (stream/durable/io.hpp wraps them all).
IO_RULES = [
    ("unchecked-io-call", UNCHECKED_IO_RE,
     "raw file I/O call with a discarded return value; route it through "
     "stream/durable/io.hpp, which turns failures into lacc::Error before "
     "the manifest can commit"),
]


def lint_tree(root):
    findings = []
    spmd_dirs = [root / "src", root / "examples"]
    for d in spmd_dirs:
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*.[ch]pp")):
            text = path.read_text(encoding="utf-8", errors="replace")
            check_rank_conditional(str(path.relative_to(root)), text, findings)
            if d.name == "src":
                check_implicit_seq_cst(str(path.relative_to(root)), text,
                                       findings)
                check_line_rules(str(path.relative_to(root)), text, findings,
                                 IO_RULES)
    for d in (root / "src", root / "examples", root / "tests", root / "bench"):
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*.[ch]pp")):
            check_line_rules(str(path.relative_to(root)),
                             path.read_text(encoding="utf-8",
                                            errors="replace"),
                             findings, THREAD_RULES)
    hot = root / "src" / "dist" / "ops.cpp"
    if hot.is_file():
        check_line_rules(str(hot.relative_to(root)),
                         hot.read_text(encoding="utf-8"), findings,
                         HOT_PATH_RULES)
    stream = root / "src" / "stream"
    if stream.is_dir():
        for path in sorted(stream.rglob("*.cpp")):
            check_line_rules(str(path.relative_to(root)),
                             path.read_text(encoding="utf-8"), findings,
                             STREAM_RULES)
    shard = root / "src" / "shard"
    if shard.is_dir():
        for path in sorted(shard.rglob("*.cpp")):
            check_line_rules(str(path.relative_to(root)),
                             path.read_text(encoding="utf-8"), findings,
                             SHARD_RULES)
    kernel = root / "src" / "kernel"
    if kernel.is_dir():
        for path in sorted(kernel.rglob("*.cpp")):
            check_line_rules(str(path.relative_to(root)),
                             path.read_text(encoding="utf-8"), findings,
                             KERNEL_RULES)
    return findings


# --- self test -------------------------------------------------------------

SELF_TESTS = [
    # (name, snippet, rule-or-None expected from rank-conditional checks)
    ("braceless if", "if (comm.rank() == 0) comm.barrier();",
     "rank-conditional-collective"),
    ("braced if", "if (rank == 0) {\n  setup();\n  comm.bcast(v, 0);\n}",
     "rank-conditional-collective"),
    ("while loop", "while (my_row() != 0) { grid.row_comm().barrier(); }",
     "rank-conditional-collective"),
    ("else branch", "if (leader) {\n  x();\n} else {\n  comm.split(0, 1);\n}",
     "rank-conditional-collective"),
    ("uniform condition", "if (flags[o]) { comm.bcast(v, r); }", None),
    ("rank cond without collective", "if (comm.rank() == 0) chunk = u.tuples();",
     None),
    ("collective after the branch",
     "if (rank == 0) local();\ncomm.barrier();", None),
    ("allow pragma",
     "// lint-spmd: allow(rank-conditional-collective)\n"
     "if (rank == 0) comm.barrier();", None),
    ("comment mention", "// if (rank == 0) comm.barrier();", None),
    ("else if chain rank cond",
     "if (n == 0) a();\nelse if (rank_ == 0) comm.barrier();",
     "rank-conditional-collective"),
    ("dist free-function collective",
     "if (world.rank() == 0) {\n"
     "  const auto gp = dist::gather_values(grid, f, requests, tuning);\n}",
     "rank-conditional-collective"),
    ("unqualified dist collective",
     "if (my_row == 0) scatter_assign_min(grid, f, std::move(pairs), tuning);",
     "rank-conditional-collective"),
    ("dist collective under uniform condition",
     "if (pending) changed = dist::global_any(grid, changed);", None),
    ("dist collective after rank branch",
     "if (rank == 0) local();\ndist::to_global(grid, f, kNoVertex);", None),
    ("mxv_plus under rank condition",
     "if (world.rank() == 0) {\n"
     "  auto y = dist::mxv_plus(grid, A, x, mask, tuning);\n}",
     "rank-conditional-collective"),
    ("mxv_plus under uniform condition",
     "if (iter < max_iters) y = mxv_plus(grid, A, contrib, {}, tuning);",
     None),
]

SELF_TESTS_HOT = [
    ("raw sort", "std::sort(v.begin(), v.end());", "raw-sort"),
    ("stable sort", "std::stable_sort(v.begin(), v.end());", "raw-sort"),
    ("radix is fine", "radix_sort_by(items, scratch, key, n);", None),
    ("vector decl", "  std::vector<int> tmp;", "heap-alloc-hot-path"),
    ("sized vector decl", "  std::vector<std::size_t> offsets(n + 1, 0);",
     "heap-alloc-hot-path"),
    ("reference binding", "  const std::vector<int>& ref = arena.thing();",
     None),
    ("by-value parameter line", "    std::vector<Tuple<VertexId>> pairs,",
     None),
    ("non-into alltoallv", "auto out = world.alltoallv(send, counts);",
     "non-into-collective"),
    ("into variant", "world.alltoallv_into(send, counts, out);", None),
    ("non-into reduce_scatter",
     "auto r = comm.reduce_scatter_block(data, op, part);",
     "non-into-collective"),
    ("allowed non-into",
     "auto out = world.alltoallv(send, counts);  "
     "// lint-spmd: allow(non-into-collective)", None),
]

SELF_TESTS_THREADS = [
    ("detached temporary", "std::thread([] { work(); }).detach();",
     "no-detached-threads"),
    ("detach via variable", "worker.detach();", "no-detached-threads"),
    ("join is fine", "worker.join();", None),
    ("joinable check is fine", "if (worker.joinable()) worker.join();", None),
    ("comment mention", "// never call worker.detach();", None),
    ("allowed detach",
     "watchdog.detach();  // lint-spmd: allow(no-detached-threads)", None),
]

SELF_TESTS_ATOMIC = [
    ("load with order", "x.load(std::memory_order_acquire);", None),
    ("load without order", "x.load();", "implicit-seq-cst"),
    ("store without order", "flag_.store(true);", "implicit-seq-cst"),
    ("fetch_add without order", "count_.fetch_add(1);", "implicit-seq-cst"),
    ("fetch_add with order", "count_.fetch_add(1, std::memory_order_release);",
     None),
    ("cas with orders",
     "a.compare_exchange_weak(e, d, std::memory_order_relaxed);", None),
    ("cas without orders", "a.compare_exchange_strong(e, d);",
     "implicit-seq-cst"),
    ("multiline args",
     "count_.fetch_add(\n    1,\n    std::memory_order_release);", None),
    ("pointer deref", "counter->store(0);", "implicit-seq-cst"),
    ("container clear untouched", "batch.clear();", None),
    ("free-function exchange untouched", "auto old = std::exchange(v, w);",
     None),
    ("comment mention", "// x.load() would be seq_cst", None),
    ("allow pragma",
     "x.load();  // lint-spmd: allow(implicit-seq-cst)", None),
]

SELF_TESTS_IO = [
    ("statement-position write", "  write(fd, buf, len);",
     "unchecked-io-call"),
    ("qualified fsync statement", "  ::fsync(fd_);", "unchecked-io-call"),
    ("void-cast close", "  if (fd >= 0) (void)::close(fd);",
     "unchecked-io-call"),
    ("statement rename", "rename(tmp.c_str(), path.c_str());",
     "unchecked-io-call"),
    ("checked close", "  if (::close(fd) != 0) io_fail(\"close\");", None),
    ("assigned write", "  const ssize_t n = ::write(fd, p, remaining);",
     None),
    ("member call is fine", "  f.write(data, len, site);", None),
    ("wrapper method is fine", "  file_.close(\"manifest.rename\");", None),
    ("comment mention", "// never call fsync(fd) without checking", None),
    ("allowed close",
     "  (void)::close(fd_);  // lint-spmd: allow(unchecked-io-call)", None),
]

SELF_TESTS_STREAM = [
    ("raw sort in delta path", "std::sort(run.begin(), run.end());",
     "raw-sort"),
    ("radix is fine", "radix_sort_by(run, scratch, row_key, n);", None),
    ("vector state is fine", "  std::vector<CscCoord> merged;", None),
    ("non-into collective is fine",
     "auto recv = world.alltoallv(send, counts);", None),
]


SELF_TESTS_KERNEL = [
    ("raw sort in kernel path", "std::sort(coords.begin(), coords.end());",
     "raw-sort"),
    ("stable sort in kernel path",
     "std::stable_sort(rows.begin(), rows.end());", "raw-sort"),
    ("counting sort is fine",
     "stream::sort_unique_column_major(coords, n);", None),
    ("partial_sort is fine",
     "std::partial_sort(out.begin(), mid, out.end(), by_rank);", None),
    ("vector state is fine", "  std::vector<VertexId> rows;", None),
]


SELF_TESTS_SHARD = [
    ("raw sort in reconcile path", "std::sort(pairs.begin(), pairs.end());",
     "raw-sort"),
    ("stable sort in reconcile path",
     "std::stable_sort(reps.begin(), reps.end());", "raw-sort"),
    ("radix is fine",
     "radix_sort_by(pairs, scratch, second_key, max_label);", None),
    ("unique is fine",
     "pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());",
     None),
    ("vector state is fine", "  std::vector<VertexId> reps;", None),
]


def self_test():
    failures = 0
    for name, snippet, expected in SELF_TESTS:
        findings = []
        check_rank_conditional("<snippet>", snippet, findings)
        got = findings[0][2] if findings else None
        if got != expected:
            print(f"self-test FAILED: {name}: expected {expected}, got "
                  f"{[f[2] for f in findings]}")
            failures += 1
    for rules_list, cases in ((HOT_PATH_RULES, SELF_TESTS_HOT),
                              (STREAM_RULES, SELF_TESTS_STREAM),
                              (SHARD_RULES, SELF_TESTS_SHARD),
                              (KERNEL_RULES, SELF_TESTS_KERNEL),
                              (THREAD_RULES, SELF_TESTS_THREADS),
                              (IO_RULES, SELF_TESTS_IO)):
        for name, snippet, expected in cases:
            findings = []
            check_line_rules("<snippet>", snippet, findings, rules_list)
            rules = {f[2] for f in findings}
            ok = (expected in rules) if expected else not rules
            if not ok:
                print(f"self-test FAILED: {name}: expected {expected}, got "
                      f"{sorted(rules)}")
                failures += 1
    for name, snippet, expected in SELF_TESTS_ATOMIC:
        findings = []
        check_implicit_seq_cst("<snippet>", snippet, findings)
        got = findings[0][2] if findings else None
        if got != expected:
            print(f"self-test FAILED: {name}: expected {expected}, got "
                  f"{[f[2] for f in findings]}")
            failures += 1
    total = (len(SELF_TESTS) + len(SELF_TESTS_HOT) + len(SELF_TESTS_STREAM) +
             len(SELF_TESTS_SHARD) + len(SELF_TESTS_KERNEL) +
             len(SELF_TESTS_THREADS) + len(SELF_TESTS_ATOMIC) +
             len(SELF_TESTS_IO))
    print(f"self-test: {total - failures}/{total} passed")
    return failures == 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own test suite and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(0 if self_test() else 1)

    findings = lint_tree(args.root.resolve())
    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint_spmd: {len(findings)} finding(s)")
        sys.exit(1)
    print("lint_spmd: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
