#!/usr/bin/env python3
"""clang-tidy driver for the concurrent subsystems (CI-enforced).

Runs the repo's .clang-tidy profile (bugprone-*, concurrency-*,
performance-*, readability-container-*) over the translation units of the
subsystems with real thread concurrency — src/serve, src/stream, src/obs,
src/sched — against a CMake compile database.

Degrades gracefully: when no clang-tidy binary is found the driver prints a
notice and exits 0, so developer machines without LLVM don't fail local
hooks; CI installs clang-tidy and passes --require so a missing binary (or
any finding, via WarningsAsErrors: '*') fails the job.

Usage:
  tools/run_clang_tidy.py [--build BUILD_DIR] [--require] [paths...]
  tools/run_clang_tidy.py --self-test

The compile database is created on demand: if BUILD_DIR lacks
compile_commands.json the driver re-runs cmake with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (configure-only; no rebuild needed —
clang-tidy wants the flags, not the objects).
"""

import argparse
import json
import pathlib
import shutil
import subprocess
import sys

DEFAULT_PATHS = ["src/serve", "src/stream", "src/obs", "src/sched"]
CANDIDATE_BINARIES = ["clang-tidy"] + [
    f"clang-tidy-{v}" for v in range(21, 13, -1)
]


def find_clang_tidy():
    for name in CANDIDATE_BINARIES:
        path = shutil.which(name)
        if path:
            return path
    return None


def ensure_compile_db(root, build_dir):
    db = build_dir / "compile_commands.json"
    if db.is_file():
        return db
    print(f"run_clang_tidy: no {db}, configuring with "
          "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    subprocess.run(
        ["cmake", "-B", str(build_dir), "-S", str(root),
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
        check=True)
    return db


def collect_sources(root, paths, db):
    """Translation units under `paths` that the compile database knows."""
    with open(db, encoding="utf-8") as f:
        known = {str(pathlib.Path(e["file"]).resolve())
                 for e in json.load(f)}
    files = []
    for p in paths:
        d = (root / p).resolve()
        if d.is_file():
            candidates = [d]
        else:
            candidates = sorted(d.rglob("*.cpp"))
        for c in candidates:
            if str(c) in known:
                files.append(c)
            else:
                print(f"run_clang_tidy: skipping {c} (not in compile db)")
    return files


def self_test(root):
    """Sanity-check the setup without requiring clang-tidy: the .clang-tidy
    profile must exist and name the four check groups, and every default
    path must contain at least one translation unit."""
    failures = 0
    cfg = root / ".clang-tidy"
    if not cfg.is_file():
        print("self-test FAILED: .clang-tidy missing")
        failures += 1
    else:
        text = cfg.read_text(encoding="utf-8")
        for group in ("bugprone-", "concurrency-", "performance-",
                      "readability-container-"):
            if group not in text:
                print(f"self-test FAILED: .clang-tidy lacks {group}* checks")
                failures += 1
        if "WarningsAsErrors" not in text:
            print("self-test FAILED: findings must be errors in CI")
            failures += 1
    for p in DEFAULT_PATHS:
        d = root / p
        if not d.is_dir() or not any(d.rglob("*.[ch]pp")):
            print(f"self-test FAILED: audit path {p} has no sources")
            failures += 1
    total = 1 + 4 + 1 + len(DEFAULT_PATHS)
    print(f"self-test: {total - failures}/{total} passed")
    return failures == 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/dirs to lint (default: {DEFAULT_PATHS})")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--build", type=pathlib.Path, default=None,
                        help="build dir with compile_commands.json "
                             "(default: ROOT/build)")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is not installed "
                             "instead of degrading to a no-op")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the setup and exit")
    args = parser.parse_args()

    root = args.root.resolve()
    if args.self_test:
        sys.exit(0 if self_test(root) else 1)

    binary = find_clang_tidy()
    if binary is None:
        print("run_clang_tidy: clang-tidy not found on PATH "
              f"(tried {', '.join(CANDIDATE_BINARIES[:3])}, ...)")
        if args.require:
            sys.exit(2)
        print("run_clang_tidy: skipping (install clang-tidy to run locally; "
              "CI runs this with --require)")
        sys.exit(0)

    build_dir = (args.build or root / "build").resolve()
    db = ensure_compile_db(root, build_dir)
    files = collect_sources(root, args.paths or DEFAULT_PATHS, db)
    if not files:
        print("run_clang_tidy: no translation units to lint")
        sys.exit(0)

    print(f"run_clang_tidy: {binary} over {len(files)} file(s)")
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet"] + [str(f) for f in files])
    if proc.returncode != 0:
        print(f"run_clang_tidy: findings (exit {proc.returncode})")
        sys.exit(1)
    print("run_clang_tidy: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
